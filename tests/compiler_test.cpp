#include <gtest/gtest.h>

#include <cmath>

#include "compiler/interp.h"
#include "compiler/ir.h"
#include "compiler/partition.h"
#include "support/rng.h"

namespace dpa::compiler {
namespace {

using E = Expr;
using S = Stmt;

// ---------- test modules ----------

// A linked list: walk(n) { v = n->val; sum += v; charge(100); spawn n->next }
Module list_module() {
  Module m;
  m.classes.push_back(ClassDef{"Node", {"val"}, {{"next", "Node"}}});
  Function walk;
  walk.name = "walk";
  walk.param = "n";
  walk.param_class = "Node";
  walk.body = {
      S::read_scalar("v", "n", "val"),
      S::accum("sum", E::v("v")),
      S::charge(E::c(100)),
      S::read_ptr("nx", "n", "next"),
      S::spawn("walk", "nx"),
  };
  m.functions.push_back(std::move(walk));
  return m;
}

// A foreign dereference forcing a split:
// f(a) { x = a->val; nx = a->next; y = nx->val; sum += x * y; }
Module split_module() {
  Module m;
  m.classes.push_back(ClassDef{"Node", {"val"}, {{"next", "Node"}}});
  Function f;
  f.name = "f";
  f.param = "a";
  f.param_class = "Node";
  f.body = {
      S::read_scalar("x", "a", "val"),
      S::read_ptr("nx", "a", "next"),
      S::read_scalar("y", "nx", "val"),
      S::accum("sum", E::mul(E::v("x"), E::v("y"))),
  };
  m.functions.push_back(std::move(f));
  return m;
}

// Independent work stays in the earlier thread:
// g(a) { x = a->val; nx = a->next; y = nx->val; sum += y; sum2 += x; }
Module keep_module() {
  Module m;
  m.classes.push_back(ClassDef{"Node", {"val"}, {{"next", "Node"}}});
  Function g;
  g.name = "g";
  g.param = "a";
  g.param_class = "Node";
  g.body = {
      S::read_scalar("x", "a", "val"),
      S::read_ptr("nx", "a", "next"),
      S::read_scalar("y", "nx", "val"),
      S::accum("sum", E::v("y")),
      S::accum("sum2", E::v("x")),
  };
  m.functions.push_back(std::move(g));
  return m;
}

// em3d-style: four independent dependency reads, each with a coefficient.
Module em3d_module() {
  Module m;
  ClassDef enode{"ENode",
                 {"c0", "c1", "c2", "c3"},
                 {{"d0", "ENode"},
                  {"d1", "ENode"},
                  {"d2", "ENode"},
                  {"d3", "ENode"}}};
  m.classes.push_back(std::move(enode));
  Function f;
  f.name = "update";
  f.param = "e";
  f.param_class = "ENode";
  std::vector<StmtPtr> body;
  for (int d = 0; d < 4; ++d) {
    const std::string i = std::to_string(d);
    body.push_back(S::read_scalar("c" + i, "e", "c" + i));
    body.push_back(S::read_ptr("p" + i, "e", "d" + i));
  }
  for (int d = 0; d < 4; ++d) {
    const std::string i = std::to_string(d);
    body.push_back(S::read_scalar("v" + i, "p" + i, "c0"));
    body.push_back(S::accum("acc", E::mul(E::v("c" + i), E::v("v" + i))));
    body.push_back(S::charge(E::c(120)));
  }
  f.body = std::move(body);
  m.functions.push_back(std::move(f));
  return m;
}

// A Barnes-Hut-shaped tree walk with a data-dependent condition.
Module tree_module() {
  Module m;
  m.classes.push_back(ClassDef{"Tree",
                               {"val", "is_leaf"},
                               {{"l", "Tree"}, {"r", "Tree"}}});
  Function walk;
  walk.name = "walk";
  walk.param = "t";
  walk.param_class = "Tree";
  walk.body = {
      S::read_scalar("v", "t", "val"),
      S::read_scalar("leaf", "t", "is_leaf"),
      S::if_(E::v("leaf"),
             {S::accum("sum", E::v("v")), S::charge(E::c(200))},
             {S::charge(E::c(50)), S::spawn_children("walk", "t")}),
  };
  m.functions.push_back(std::move(walk));
  return m;
}

// ---------- partitioning ----------

TEST(Partition, ListWalkIsOneThread) {
  const ThreadProgram p = partition(list_module());
  EXPECT_EQ(p.templates.size(), 1u);
  const ThreadTemplate& t = p.at(p.entry_of("walk"));
  EXPECT_EQ(t.label_var, "n");
  EXPECT_EQ(t.reads.size(), 2u);  // val and next hoisted
  EXPECT_TRUE(t.captures.empty());
}

TEST(Partition, ForeignDerefSplitsIntoTwoThreads) {
  const ThreadProgram p = partition(split_module());
  ASSERT_EQ(p.templates.size(), 2u);
  const ThreadTemplate& entry = p.at(p.entry_of("f"));
  EXPECT_EQ(entry.label_var, "a");
  const ThreadTemplate& cont = p.templates[1];
  EXPECT_EQ(cont.label_var, "nx");
  EXPECT_EQ(cont.label_class, "Node");
  // The continuation needs x from the entry thread.
  ASSERT_EQ(cont.captures.size(), 1u);
  EXPECT_EQ(cont.captures[0], "x");
  // Its read of nx->val is hoisted.
  ASSERT_EQ(cont.reads.size(), 1u);
  EXPECT_EQ(cont.reads[0].field, "val");
}

TEST(Partition, IndependentStatementsStayInEarlierThread) {
  const ThreadProgram p = partition(keep_module());
  ASSERT_EQ(p.templates.size(), 2u);
  const ThreadTemplate& entry = p.at(p.entry_of("g"));
  // sum2 += x stays in the entry thread, after the spawn.
  bool entry_has_sum2 = false;
  for (const auto& op : entry.ops)
    if (op->kind == TOp::K::kAccum && op->dst == "sum2")
      entry_has_sum2 = true;
  EXPECT_TRUE(entry_has_sum2);
  // The moved thread does not need x: it captures nothing.
  EXPECT_TRUE(p.templates[1].captures.empty());
}

TEST(Partition, Em3dKernelMakesOneThreadPerDependency) {
  const ThreadProgram p = partition(em3d_module());
  // Entry + one continuation per dependency read.
  EXPECT_EQ(p.templates.size(), 5u);
  // Each continuation captures exactly its coefficient.
  for (std::size_t i = 1; i < 5; ++i)
    EXPECT_EQ(p.templates[i].captures.size(), 1u) << "T" << i;
}

TEST(Partition, TreeWalkKeepsConditionalInOneThread) {
  const ThreadProgram p = partition(tree_module());
  EXPECT_EQ(p.templates.size(), 1u);
  const auto s = p.stats();
  EXPECT_EQ(s.num_templates, 1u);
  EXPECT_EQ(s.total_spawn_sites, 1u);  // the spawn_children inside the If
  EXPECT_EQ(s.max_reads_per_thread, 2u);
}

TEST(Partition, DumpIsStable) {
  const std::string dump = partition(split_module()).dump();
  EXPECT_NE(dump.find("thread T0 [f] label a : Node"), std::string::npos);
  EXPECT_NE(dump.find("spawn T1 on nx"), std::string::npos);
  EXPECT_NE(dump.find("captures(x)"), std::string::npos);
  EXPECT_NE(dump.find("read y = nx->val"), std::string::npos);
}

TEST(Partition, DotExportShowsThreadGraph) {
  const std::string dot = partition(split_module()).to_dot();
  EXPECT_NE(dot.find("digraph threads"), std::string::npos);
  EXPECT_NE(dot.find("T0 -> T1 [label=\"nx\"]"), std::string::npos);
  EXPECT_NE(dot.find("captures: x"), std::string::npos);
}

TEST(Partition, DotExportShowsRecursiveEdges) {
  const std::string dot = partition(tree_module()).to_dot();
  // spawn_children inside the If: dashed self-edge on the entry template.
  EXPECT_NE(dot.find("T0 -> T0 [label=\"children(t)\", style=dashed]"),
            std::string::npos);
}

TEST(Partition, StatsCountHoistedReads) {
  const auto s = partition(em3d_module()).stats();
  EXPECT_EQ(s.num_templates, 5u);
  // Entry hoists 4 coeffs + 4 pointers; each continuation hoists 1 value.
  EXPECT_EQ(s.total_hoisted_reads, 8u + 4u);
  EXPECT_EQ(s.max_reads_per_thread, 8u);
}

TEST(Partition, UnknownFieldDies) {
  Module m;
  m.classes.push_back(ClassDef{"Node", {"val"}, {}});
  Function f;
  f.name = "f";
  f.param = "n";
  f.param_class = "Node";
  f.body = {S::read_scalar("v", "n", "bogus")};
  m.functions.push_back(std::move(f));
  EXPECT_DEATH(partition(m), "no scalar field 'bogus'");
}

TEST(Partition, InvisibleSpawnPointerDies) {
  Module m;
  m.classes.push_back(ClassDef{"Node", {"val"}, {{"next", "Node"}}});
  Function f;
  f.name = "f";
  f.param = "n";
  f.param_class = "Node";
  f.body = {S::spawn("f", "ghost")};
  m.functions.push_back(std::move(f));
  EXPECT_DEATH(partition(m), "not visible");
}

// ---------- execution: compiled-on-runtime vs direct ----------

sim::NetParams test_net() { return sim::NetParams{}; }

// Builds a distributed linked list; returns head.
gas::GPtr<Record> build_list(rt::Cluster& cluster, const Module& m, int len,
                             double* expected_sum) {
  std::vector<gas::GPtr<Record>> nodes;
  *expected_sum = 0;
  for (int i = 0; i < len; ++i) {
    Record r = make_record(m, "Node");
    r.scalars[0] = double(i + 1) * 1.5;
    *expected_sum += r.scalars[0];
    nodes.push_back(cluster.heap.make<Record>(
        sim::NodeId(std::uint32_t(i) % cluster.num_nodes()), std::move(r)));
  }
  for (int i = 0; i + 1 < len; ++i)
    gas::GlobalHeap::mutate(nodes[std::size_t(i)])->ptrs[0] =
        nodes[std::size_t(i + 1)];
  return nodes[0];
}

TEST(Execution, CompiledListWalkMatchesDirect) {
  const Module m = list_module();
  const ThreadProgram p = partition(m);
  rt::Cluster cluster(4, test_net());
  double expected = 0;
  const auto head = build_list(cluster, m, 50, &expected);

  Accums direct;
  interp_direct(m, "walk", head.addr, direct);
  EXPECT_DOUBLE_EQ(direct["sum"], expected);

  ProgramRunner runner(m, p);
  Accums compiled;
  std::vector<std::vector<gas::GPtr<Record>>> roots(4);
  roots[0].push_back(head);
  const auto result =
      runner.run(cluster, rt::RuntimeConfig::dpa(8), "walk",
                 std::move(roots), &compiled);
  ASSERT_TRUE(result.completed) << result.diagnostics;
  EXPECT_DOUBLE_EQ(compiled["sum"], expected);
}

TEST(Execution, CompiledSplitProgramMatchesDirect) {
  const Module m = split_module();
  const ThreadProgram p = partition(m);
  rt::Cluster cluster(2, test_net());
  double unused = 0;
  const auto head = build_list(cluster, m, 2, &unused);

  Accums direct, compiled;
  interp_direct(m, "f", head.addr, direct);

  ProgramRunner runner(m, p);
  std::vector<std::vector<gas::GPtr<Record>>> roots(2);
  roots[0].push_back(head);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(8), "f",
                                 std::move(roots), &compiled);
  ASSERT_TRUE(result.completed) << result.diagnostics;
  EXPECT_DOUBLE_EQ(compiled["sum"], direct["sum"]);
  EXPECT_NE(direct["sum"], 0.0);
}

// Builds a random binary tree of Records; leaves carry is_leaf=1.
gas::GPtr<Record> build_tree(rt::Cluster& cluster, const Module& m, Rng& rng,
                             int depth) {
  Record r = make_record(m, "Tree");
  r.scalars[0] = rng.uniform(0, 10);           // val
  r.scalars[1] = (depth == 0) ? 1.0 : 0.0;     // is_leaf
  auto self = cluster.heap.make<Record>(
      sim::NodeId(rng.next_below(cluster.num_nodes())), std::move(r));
  if (depth > 0) {
    auto* mut = gas::GlobalHeap::mutate(self);
    mut->ptrs[0] = build_tree(cluster, m, rng, depth - 1);
    if (rng.chance(0.8))
      mut->ptrs[1] = build_tree(cluster, m, rng, depth - 1);
  }
  return self;
}

TEST(Execution, CompiledTreeWalkMatchesDirectAcrossEngines) {
  const Module m = tree_module();
  const ThreadProgram p = partition(m);
  for (const auto& rcfg :
       {rt::RuntimeConfig::dpa(16), rt::RuntimeConfig::caching(),
        rt::RuntimeConfig::blocking()}) {
    rt::Cluster cluster(4, test_net());
    Rng rng(99);
    const auto root = build_tree(cluster, m, rng, 7);

    Accums direct, compiled;
    interp_direct(m, "walk", root.addr, direct);

    ProgramRunner runner(m, p);
    std::vector<std::vector<gas::GPtr<Record>>> roots(4);
    roots[0].push_back(root);
    const auto result =
        runner.run(cluster, rcfg, "walk", std::move(roots), &compiled);
    ASSERT_TRUE(result.completed) << result.diagnostics;
    EXPECT_NEAR(compiled["sum"], direct["sum"], 1e-9) << rcfg.describe();
  }
}

TEST(Execution, Em3dKernelMatchesDirectAndAggregates) {
  const Module m = em3d_module();
  const ThreadProgram p = partition(m);
  rt::Cluster cluster(4, test_net());
  Rng rng(7);

  // A pool of ENodes wired randomly; every node updates its own records.
  const int per_node = 32;
  std::vector<gas::GPtr<Record>> all;
  for (int i = 0; i < per_node * 4; ++i) {
    Record r = make_record(m, "ENode");
    for (int c = 0; c < 4; ++c) r.scalars[std::size_t(c)] = rng.uniform(0, 1);
    all.push_back(cluster.heap.make<Record>(sim::NodeId(i / per_node),
                                            std::move(r)));
  }
  for (auto& rec : all) {
    auto* mut = gas::GlobalHeap::mutate(rec);
    for (int d = 0; d < 4; ++d)
      mut->ptrs[std::size_t(d)] = all[rng.next_below(all.size())];
  }

  Accums direct, compiled;
  for (const auto& rec : all) interp_direct(m, "update", rec.addr, direct);

  ProgramRunner runner(m, p);
  std::vector<std::vector<gas::GPtr<Record>>> roots(4);
  for (int i = 0; i < per_node * 4; ++i)
    roots[std::size_t(i / per_node)].push_back(all[std::size_t(i)]);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(16),
                                 "update", std::move(roots), &compiled);
  ASSERT_TRUE(result.completed) << result.diagnostics;
  EXPECT_NEAR(compiled["acc"], direct["acc"], 1e-9);
  // The runtime aggregated: far fewer request messages than refs.
  EXPECT_GT(result.rt.aggregation_factor(), 2.0);
}

TEST(Execution, ChargesFlowIntoSimulatedTime) {
  const Module m = list_module();
  const ThreadProgram p = partition(m);
  rt::Cluster cluster(1, test_net());
  double unused = 0;
  const auto head = build_list(cluster, m, 100, &unused);

  Accums compiled;
  ProgramRunner runner(m, p);
  std::vector<std::vector<gas::GPtr<Record>>> roots(1);
  roots[0].push_back(head);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(8), "walk",
                                 std::move(roots), &compiled);
  ASSERT_TRUE(result.completed);
  // 100 nodes x charge(100ns) is a lower bound on the phase time.
  EXPECT_GE(result.elapsed, 100 * 100);
}

}  // namespace
}  // namespace dpa::compiler
