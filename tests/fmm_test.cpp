#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/fmm/app.h"
#include "apps/fmm/expansion.h"
#include "apps/fmm/tree.h"

namespace dpa::apps::fmm {
namespace {

sim::NetParams t3d_net() { return sim::NetParams{}; }

double rel_err(Cmplx got, Cmplx want) {
  const double scale = std::max(1e-12, std::abs(want));
  return std::abs(got - want) / scale;
}

// ---------- expansion kernels ----------

std::vector<Particle> two_particles() {
  std::vector<Particle> p(2);
  p[0] = Particle{{0.1, 0.2}, {}, 0.7, {}, 0};
  p[1] = Particle{{-0.15, 0.05}, {}, 0.3, {}, 1};
  return p;
}

TEST(Expansion, MultipoleFieldMatchesDirectFarAway) {
  const auto parts = two_particles();
  const std::uint32_t p = 16;
  std::vector<Cmplx> a(p + 1);
  p2m(parts, Cmplx{0, 0}, p, a);

  const Cmplx z{3.0, 2.0};
  Cmplx direct{};
  for (const auto& part : parts) direct += p2p_field(z, part.z, part.q);
  const Cmplx approx = m2p_field(a, Cmplx{0, 0}, p, z);
  EXPECT_LT(rel_err(approx, direct), 1e-12);
}

TEST(Expansion, M2MPreservesTheField) {
  const auto parts = two_particles();
  const std::uint32_t p = 18;
  std::vector<Cmplx> a_child(p + 1), a_parent(p + 1);
  const Cmplx z_child{0.05, 0.1}, z_parent{0.25, -0.25};
  p2m(parts, z_child, p, a_child);
  m2m(a_child, z_child, z_parent, p, a_parent);

  const Cmplx z{4.0, -3.0};
  Cmplx direct{};
  for (const auto& part : parts) direct += p2p_field(z, part.z, part.q);
  EXPECT_LT(rel_err(m2p_field(a_parent, z_parent, p, z), direct), 1e-10);
}

TEST(Expansion, M2LThenL2PMatchesDirect) {
  const auto parts = two_particles();
  const std::uint32_t p = 20;
  std::vector<Cmplx> a(p + 1), b(p + 1);
  const Cmplx z_m{0, 0};
  const Cmplx z_l{5.0, 0.0};  // well separated from sources near origin
  p2m(parts, z_m, p, a);
  m2l(a, z_m, z_l, p, b);

  const Cmplx z = z_l + Cmplx{0.3, -0.2};  // within the local ball
  Cmplx direct{};
  for (const auto& part : parts) direct += p2p_field(z, part.z, part.q);
  EXPECT_LT(rel_err(l2p_field(b, z_l, p, z), direct), 1e-9);
}

TEST(Expansion, L2LShiftsTheLocalCenter) {
  const auto parts = two_particles();
  const std::uint32_t p = 20;
  std::vector<Cmplx> a(p + 1), b(p + 1), b2(p + 1);
  const Cmplx z_m{0, 0}, z_l{5.0, 1.0}, z_l2{5.4, 0.8};
  p2m(parts, z_m, p, a);
  m2l(a, z_m, z_l, p, b);
  l2l(b, z_l, z_l2, p, b2);

  const Cmplx z = z_l2 + Cmplx{0.1, 0.1};
  EXPECT_LT(rel_err(l2p_field(b2, z_l2, p, z), l2p_field(b, z_l, p, z)),
            1e-9);
}

TEST(Expansion, MoreTermsMoreAccuracy) {
  const auto parts = two_particles();
  const Cmplx z{1.2, 0.9};  // close-ish: truncation error visible
  Cmplx direct{};
  for (const auto& part : parts) direct += p2p_field(z, part.z, part.q);

  double prev_err = 1e9;
  for (const std::uint32_t p : {2u, 6u, 12u, 24u}) {
    std::vector<Cmplx> a(p + 1);
    p2m(parts, Cmplx{0, 0}, p, a);
    const double err = rel_err(m2p_field(a, Cmplx{0, 0}, p, z), direct);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-6);
}

// ---------- tree & lists ----------

TEST(FmmTree, EveryParticleInOneLeaf) {
  const auto parts = make_particles(600, 5);
  const FmmTree tree = FmmTree::build(parts);
  std::vector<int> seen(600, 0);
  for (std::size_t i = 0; i < tree.num_cells(); ++i) {
    const auto& c = tree.at(std::int32_t(i));
    if (!c.leaf) continue;
    for (auto pi : c.parts) seen[std::size_t(pi)]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(FmmTree, AdaptiveDepthFollowsClustering) {
  const auto clustered = make_particles(2000, 6, /*clustered=*/true);
  const auto uniform = make_particles(2000, 6, /*clustered=*/false);
  auto max_level = [](const FmmTree& t) {
    int deepest = 0;
    for (std::size_t i = 0; i < t.num_cells(); ++i)
      deepest = std::max(deepest, t.at(std::int32_t(i)).level);
    return deepest;
  };
  EXPECT_GT(max_level(FmmTree::build(clustered)),
            max_level(FmmTree::build(uniform)));
}

TEST(FmmTree, ListEntriesAreWellSeparatedOrLeafPairs) {
  const auto parts = make_particles(800, 7);
  FmmTree tree = FmmTree::build(parts);
  tree.build_lists(4.0);
  for (std::size_t t = 0; t < tree.num_cells(); ++t) {
    const auto& tc = tree.at(std::int32_t(t));
    for (const ListEntry& e : tree.list(std::int32_t(t))) {
      const auto& sc = tree.at(e.src);
      const double s = std::max(tc.half, sc.half);
      const double dx = std::abs(tc.center.real() - sc.center.real());
      const double dy = std::abs(tc.center.imag() - sc.center.imag());
      if (e.kind == Kind::kM2L) {
        EXPECT_GE(std::max(dx, dy), 4.0 * s * (1 - 1e-9));
      } else {
        EXPECT_TRUE(tc.leaf && sc.leaf);
      }
    }
  }
}

TEST(FmmTree, SequentialFmmMatchesDirect) {
  FmmConfig cfg;
  cfg.nparticles = 700;
  cfg.terms = 16;
  cfg.seed = 8;
  FmmApp app(cfg);
  const auto seq = app.run_sequential();
  const auto direct = direct_forces(app.initial_particles());
  double worst = 0;
  for (std::size_t i = 0; i < direct.size(); ++i)
    worst = std::max(worst, rel_err(seq.forces[i], direct[i]));
  EXPECT_LT(worst, 2e-5);
}

TEST(FmmTree, AccuracyImprovesWithTerms) {
  auto worst_for_terms = [](std::uint32_t terms) {
    FmmConfig cfg;
    cfg.nparticles = 400;
    cfg.terms = terms;
    cfg.seed = 9;
    FmmApp app(cfg);
    const auto seq = app.run_sequential();
    const auto direct = direct_forces(app.initial_particles());
    double worst = 0;
    for (std::size_t i = 0; i < direct.size(); ++i)
      worst = std::max(worst, rel_err(seq.forces[i], direct[i]));
    return worst;
  };
  EXPECT_LT(worst_for_terms(24), worst_for_terms(6));
  EXPECT_LT(worst_for_terms(24), 1e-7);
}

TEST(FmmTree, PartitionCoversAllWorkOnce) {
  const auto parts = make_particles(1000, 10);
  FmmTree tree = FmmTree::build(parts);
  tree.build_lists(4.0);
  const auto partition = tree.partition(8, FmmConfig{});
  std::vector<int> seen(tree.num_cells(), 0);
  for (const auto& targets : partition.targets)
    for (const auto t : targets) seen[std::size_t(t)]++;
  for (std::size_t t = 0; t < tree.num_cells(); ++t) {
    const int expected = tree.list(std::int32_t(t)).empty() ? 0 : 1;
    EXPECT_EQ(seen[t], expected);
  }
}

TEST(FmmTree, PartitionBalancesWork) {
  const auto parts = make_particles(3000, 11);
  FmmTree tree = FmmTree::build(parts);
  tree.build_lists(4.0);
  const FmmConfig cfg;
  const auto partition = tree.partition(4, cfg);
  std::vector<double> work(4, 0.0);
  for (std::size_t n = 0; n < 4; ++n)
    for (const auto t : partition.targets[n])
      for (const ListEntry& e : tree.list(t)) work[n] += tree.entry_cost(t, e, cfg);
  double total = work[0] + work[1] + work[2] + work[3];
  for (double w : work) EXPECT_NEAR(w / total, 0.25, 0.1);
}

// ---------- parallel phase ----------

TEST(FmmParallel, MatchesDirectForcesUnderDpa) {
  FmmConfig cfg;
  cfg.nparticles = 600;
  cfg.terms = 16;
  cfg.seed = 12;
  FmmApp app(cfg);
  const auto run = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(run.all_completed());
  const auto direct = direct_forces(app.initial_particles());
  double worst = 0;
  for (std::size_t i = 0; i < direct.size(); ++i)
    worst = std::max(worst,
                     rel_err(run.final_particles[i].force, direct[i]));
  EXPECT_LT(worst, 2e-5);
}

TEST(FmmParallel, AllEnginesAgreeWithSequential) {
  FmmConfig cfg;
  cfg.nparticles = 300;
  cfg.terms = 10;
  cfg.seed = 13;
  FmmApp app(cfg);
  const auto seq = app.run_sequential();
  for (const auto& rcfg :
       {rt::RuntimeConfig::dpa(8), rt::RuntimeConfig::dpa_base(8),
        rt::RuntimeConfig::caching(), rt::RuntimeConfig::blocking()}) {
    const auto run = app.run(2, t3d_net(), rcfg);
    ASSERT_TRUE(run.all_completed()) << rcfg.describe();
    EXPECT_EQ(run.steps[0].m2l, seq.m2l) << rcfg.describe();
    EXPECT_EQ(run.steps[0].p2p_pairs, seq.p2p_pairs) << rcfg.describe();
    for (std::size_t i = 0; i < seq.forces.size(); i += 37) {
      EXPECT_LT(rel_err(run.final_particles[i].force, seq.forces[i]), 1e-9)
          << rcfg.describe() << " particle " << i;
    }
  }
}

TEST(FmmParallel, MultiStepRunsComplete) {
  FmmConfig cfg;
  cfg.nparticles = 400;
  cfg.terms = 8;
  cfg.nsteps = 2;
  cfg.seed = 14;
  FmmApp app(cfg);
  const auto run = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(32));
  ASSERT_TRUE(run.all_completed());
  EXPECT_EQ(run.steps.size(), 2u);
  EXPECT_GT(run.steps[1].m2l, 0u);
}

TEST(FmmParallel, SpeedsUpWithNodes) {
  FmmConfig cfg;
  cfg.nparticles = 2000;
  cfg.terms = 12;
  cfg.seed = 15;
  FmmApp app(cfg);
  const double t1 =
      app.run(1, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  const double t8 =
      app.run(8, t3d_net(), rt::RuntimeConfig::dpa(50)).total_parallel_seconds();
  EXPECT_GT(t1 / t8, 4.0);
}

TEST(FmmParallel, DpaBeatsCachingOnMultipleNodes) {
  FmmConfig cfg;
  cfg.nparticles = 1500;
  cfg.terms = 12;
  cfg.seed = 16;
  FmmApp app(cfg);
  const double dpa =
      app.run(8, t3d_net(), rt::RuntimeConfig::dpa(300)).total_parallel_seconds();
  const double caching =
      app.run(8, t3d_net(), rt::RuntimeConfig::caching()).total_parallel_seconds();
  EXPECT_LT(dpa, caching);
}

TEST(FmmParallel, DeterministicRun) {
  FmmConfig cfg;
  cfg.nparticles = 500;
  cfg.terms = 8;
  cfg.seed = 17;
  FmmApp app(cfg);
  const auto a = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  const auto b = app.run(4, t3d_net(), rt::RuntimeConfig::dpa(16));
  EXPECT_EQ(a.steps[0].phase.elapsed, b.steps[0].phase.elapsed);
  EXPECT_EQ(a.steps[0].phase.rt.refs_requested,
            b.steps[0].phase.rt.refs_requested);
}

}  // namespace
}  // namespace dpa::apps::fmm
