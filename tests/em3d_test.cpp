#include <gtest/gtest.h>

#include <cmath>

#include "apps/em3d/em3d.h"

namespace dpa::apps::em3d {
namespace {

sim::NetParams t3d_net() { return sim::NetParams{}; }

Em3dConfig small_cfg() {
  Em3dConfig cfg;
  cfg.e_per_node = 64;
  cfg.h_per_node = 64;
  cfg.degree = 6;
  cfg.iters = 2;
  cfg.seed = 5;
  return cfg;
}

TEST(Em3d, GraphHasRequestedShape) {
  Em3dApp app(small_cfg(), 4);
  EXPECT_EQ(app.total_edges(), std::uint64_t(2 * 4 * 64 * 6));
  // Remote fraction tracks the configured probability.
  EXPECT_NEAR(app.remote_edge_fraction(), 0.2, 0.05);
}

TEST(Em3d, SingleNodeHasNoRemoteEdges) {
  Em3dApp app(small_cfg(), 1);
  EXPECT_DOUBLE_EQ(app.remote_edge_fraction(), 0.0);
}

TEST(Em3d, ParallelMatchesSequentialExactly) {
  // Unlike the N-body codes there is no floating-point reassociation worry:
  // each node's update is a fixed dependency list... but engines may apply
  // deps in different orders, so compare with tolerance.
  Em3dApp app(small_cfg(), 4);
  const auto seq = app.run_sequential();
  const auto par = app.run(t3d_net(), rt::RuntimeConfig::dpa(16));
  ASSERT_TRUE(par.all_completed());
  for (std::size_t i = 0; i < seq.e_values.size(); ++i)
    EXPECT_NEAR(par.e_values[i], seq.e_values[i], 1e-12) << "e " << i;
  for (std::size_t i = 0; i < seq.h_values.size(); ++i)
    EXPECT_NEAR(par.h_values[i], seq.h_values[i], 1e-12) << "h " << i;
}

TEST(Em3d, AllEnginesAgree) {
  Em3dApp app(small_cfg(), 2);
  const auto seq = app.run_sequential();
  for (const auto& rcfg :
       {rt::RuntimeConfig::dpa(32), rt::RuntimeConfig::dpa_base(32),
        rt::RuntimeConfig::dpa_pipelined(32), rt::RuntimeConfig::caching(),
        rt::RuntimeConfig::blocking()}) {
    const auto par = app.run(t3d_net(), rcfg);
    ASSERT_TRUE(par.all_completed()) << rcfg.describe();
    for (std::size_t i = 0; i < seq.e_values.size(); i += 7)
      EXPECT_NEAR(par.e_values[i], seq.e_values[i], 1e-12) << rcfg.describe();
  }
}

TEST(Em3d, TwoItersChangeValuesTwice) {
  auto cfg1 = small_cfg();
  cfg1.iters = 1;
  auto cfg2 = small_cfg();
  cfg2.iters = 2;
  const auto one = Em3dApp(cfg1, 2).run_sequential();
  const auto two = Em3dApp(cfg2, 2).run_sequential();
  // Same graph (same seed/node count), more iterations: different values.
  double diff = 0;
  for (std::size_t i = 0; i < one.e_values.size(); ++i)
    diff += std::abs(one.e_values[i] - two.e_values[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(Em3d, PhasesPerIteration) {
  Em3dApp app(small_cfg(), 2);
  const auto par = app.run(t3d_net(), rt::RuntimeConfig::dpa(16));
  EXPECT_EQ(par.steps.size(), 4u);  // 2 iters x (E phase + H phase)
}

TEST(Em3d, AggregationCollapsesFineGrainedReads) {
  auto cfg = small_cfg();
  cfg.iters = 1;
  cfg.remote_prob = 0.5;
  Em3dApp app(cfg, 4);
  const auto agg = app.run(t3d_net(), rt::RuntimeConfig::dpa(64));
  const auto noagg = app.run(t3d_net(), rt::RuntimeConfig::dpa_pipelined(64));
  ASSERT_TRUE(agg.all_completed() && noagg.all_completed());
  // Same refs fetched, far fewer messages.
  EXPECT_EQ(agg.steps[0].phase.rt.refs_requested,
            noagg.steps[0].phase.rt.refs_requested);
  EXPECT_LT(agg.steps[0].phase.rt.request_msgs,
            noagg.steps[0].phase.rt.request_msgs / 4);
  EXPECT_LT(agg.total_parallel_seconds(), noagg.total_parallel_seconds());
}

TEST(Em3d, DpaBeatsCachingOnFineGrainedGraph) {
  auto cfg = small_cfg();
  cfg.e_per_node = 256;
  cfg.h_per_node = 256;
  cfg.remote_prob = 0.3;
  cfg.iters = 1;
  Em3dApp app(cfg, 8);
  const double dpa =
      app.run(t3d_net(), rt::RuntimeConfig::dpa(64)).total_parallel_seconds();
  const double caching =
      app.run(t3d_net(), rt::RuntimeConfig::caching()).total_parallel_seconds();
  EXPECT_LT(dpa * 1.5, caching);  // decisive win on 8-byte remote reads
}

TEST(Em3d, DeterministicRun) {
  Em3dApp app(small_cfg(), 4);
  const auto a = app.run(t3d_net(), rt::RuntimeConfig::dpa(16));
  const auto b = app.run(t3d_net(), rt::RuntimeConfig::dpa(16));
  EXPECT_EQ(a.steps[0].phase.elapsed, b.steps[0].phase.elapsed);
  EXPECT_EQ(a.e_values, b.e_values);
}

}  // namespace
}  // namespace dpa::apps::em3d
