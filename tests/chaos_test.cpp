// Chaos suite: end-to-end runs of barnes / fmm / em3d on a faulty fabric.
//
// The contract under test (see sim/fault.h and runtime/engine.h): with the
// deterministic in-order schedule, a run under any fault plan produces
// *bit-identical* physics to the fault-free run — drops, duplicates,
// reordering and pauses cost simulated time, never correctness. Each app is
// run under several fault seeds and compared against its own fault-free
// baseline; we also check the recovery machinery actually engaged (drops
// observed, retries >= drops, acks flowing, duplicates deduplicated).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"
#include "runtime/config.h"
#include "sim/fault.h"
#include "sim/network.h"

namespace dpa {
namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint64_t kFaultSeeds[] = {1, 2, 3};

// A modest LogGP fabric (t3d-ish shape, scaled down so the suite stays
// fast). Fault probabilities are cranked well above the "chaos" preset so
// every recovery path triggers even at test scale.
sim::NetParams base_net() {
  sim::NetParams p;
  p.send_overhead = 500;
  p.recv_overhead = 600;
  p.latency = 1500;
  p.ns_per_byte = 4.0;
  p.per_msg_wire = 100;
  p.nic_serialize = true;
  p.mtu_bytes = 4096;
  return p;
}

sim::NetParams faulty_net(std::uint64_t seed) {
  auto p = base_net();
  p.faults = sim::FaultPlan::parse(
      "drop=0.08,dup=0.04,reorder=0.1,delay=0.05:40000,pause=0.01:100000,"
      "jitter");
  p.faults.seed = seed;
  return p;
}

// Sums fault + reliability counters across a run's phases.
struct ChaosTotals {
  sim::FaultStats faults;
  std::uint64_t retries = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_recv = 0;
  std::uint64_t dup_msgs_dropped = 0;

  template <class Run>
  static ChaosTotals of(const Run& run) {
    ChaosTotals t;
    for (const auto& step : run.steps) {
      t.faults.dropped_msgs += step.phase.faults.dropped_msgs;
      t.faults.dup_msgs += step.phase.faults.dup_msgs;
      t.faults.delayed_frags += step.phase.faults.delayed_frags;
      t.faults.pauses += step.phase.faults.pauses;
      t.retries += step.phase.rt.retries;
      t.acks_sent += step.phase.rt.acks_sent;
      t.acks_recv += step.phase.rt.acks_recv;
      t.dup_msgs_dropped += step.phase.rt.dup_msgs_dropped;
    }
    return t;
  }

  // Every dropped message — request, reply, or ack — forces at least one
  // distinct retransmission, unless a fabric-duplicated copy of the same
  // information still got through (a duplicated data message is acked per
  // copy, so one surviving ack can mask one dropped one). Each dup event
  // yields at most one such redundant copy, hence the bound
  //     retries + dup_msgs >= dropped_msgs,
  // which collapses to the strict retries >= drops when dup is off (see
  // RetriesCoverDropsExactlyWithoutDuplication below).
  void check_recovery() const {
    EXPECT_GT(faults.dropped_msgs, 0u) << "fault plan never fired";
    EXPECT_GE(retries + faults.dup_msgs, faults.dropped_msgs);
    EXPECT_GT(retries, 0u);
    EXPECT_GT(acks_sent, 0u);
    EXPECT_GT(acks_recv, 0u);
    EXPECT_GE(acks_sent, acks_recv);
  }
};

template <class T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(T)), 0)
      << "physics diverged under faults";
}

TEST(Chaos, BarnesPhysicsSurvivesFaults) {
  apps::barnes::BarnesConfig cfg;
  cfg.nbodies = 256;
  cfg.nsteps = 2;
  const apps::barnes::BarnesApp app(cfg);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(50);

  const auto clean = app.run(kNodes, base_net(), rcfg);
  ASSERT_TRUE(clean.all_completed());
  EXPECT_EQ(ChaosTotals::of(clean).faults.dropped_msgs, 0u);
  EXPECT_EQ(ChaosTotals::of(clean).retries, 0u);

  for (const auto seed : kFaultSeeds) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const auto chaos = app.run(kNodes, faulty_net(seed), rcfg);
    ASSERT_TRUE(chaos.all_completed());
    expect_bits_equal(clean.final_bodies, chaos.final_bodies);
    ChaosTotals::of(chaos).check_recovery();
    // Faults only ever cost time.
    EXPECT_GE(chaos.total_parallel_seconds(),
              clean.total_parallel_seconds());
  }
}

TEST(Chaos, FmmPhysicsSurvivesFaults) {
  apps::fmm::FmmConfig cfg;
  cfg.nparticles = 256;
  cfg.terms = 8;
  const apps::fmm::FmmApp app(cfg);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(50);

  const auto clean = app.run(kNodes, base_net(), rcfg);
  ASSERT_TRUE(clean.all_completed());

  for (const auto seed : kFaultSeeds) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const auto chaos = app.run(kNodes, faulty_net(seed), rcfg);
    ASSERT_TRUE(chaos.all_completed());
    expect_bits_equal(clean.final_particles, chaos.final_particles);
    ChaosTotals::of(chaos).check_recovery();
  }
}

TEST(Chaos, Em3dPhysicsSurvivesFaults) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 256;
  cfg.h_per_node = 256;
  cfg.remote_prob = 0.35;
  cfg.iters = 2;
  const apps::em3d::Em3dApp app(cfg, kNodes);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(64);

  const auto clean = app.run(base_net(), rcfg);
  ASSERT_TRUE(clean.all_completed());

  for (const auto seed : kFaultSeeds) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const auto chaos = app.run(faulty_net(seed), rcfg);
    ASSERT_TRUE(chaos.all_completed());
    EXPECT_EQ(clean.e_values, chaos.e_values);
    EXPECT_EQ(clean.h_values, chaos.h_values);
    ChaosTotals::of(chaos).check_recovery();
  }
}

// With duplication off there are no redundant acks, so the invariant is
// exact: every drop (data or ack) times out into at least one distinct
// retransmission. Duplicate-free chaos also pins dedup at zero.
TEST(Chaos, RetriesCoverDropsExactlyWithoutDuplication) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 192;
  cfg.h_per_node = 192;
  cfg.remote_prob = 0.35;
  const apps::em3d::Em3dApp app(cfg, kNodes);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(64);

  const auto clean = app.run(base_net(), rcfg);
  ASSERT_TRUE(clean.all_completed());
  for (const auto seed : kFaultSeeds) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    auto net = base_net();
    net.faults = sim::FaultPlan::parse("drop=0.1,delay=0.05,jitter");
    net.faults.seed = seed;
    const auto chaos = app.run(net, rcfg);
    ASSERT_TRUE(chaos.all_completed());
    EXPECT_EQ(clean.e_values, chaos.e_values);
    const auto t = ChaosTotals::of(chaos);
    EXPECT_GT(t.faults.dropped_msgs, 0u);
    EXPECT_GE(t.retries, t.faults.dropped_msgs);
    EXPECT_EQ(t.faults.dup_msgs, 0u);
  }
}

// When the fabric duplicates messages, the receiver-side sequence filter
// must be what keeps delivery exactly-once.
TEST(Chaos, DuplicatesAreDeduplicated) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 192;
  cfg.h_per_node = 192;
  cfg.remote_prob = 0.35;
  const apps::em3d::Em3dApp app(cfg, kNodes);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(64);

  const auto clean = app.run(base_net(), rcfg);
  auto net = base_net();
  net.faults = sim::FaultPlan::parse("dup=0.2");
  const auto chaos = app.run(net, rcfg);
  ASSERT_TRUE(chaos.all_completed());
  EXPECT_EQ(clean.e_values, chaos.e_values);
  const auto t = ChaosTotals::of(chaos);
  EXPECT_GT(t.faults.dup_msgs, 0u);
  EXPECT_GT(t.dup_msgs_dropped, 0u);
  EXPECT_GE(t.acks_sent, t.acks_recv);
}

// The faulted schedule itself must replay bit-identically: same seed, same
// drops, same retries, same elapsed time.
TEST(Chaos, SameFaultSeedReplaysBitIdentically) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 128;
  cfg.h_per_node = 128;
  cfg.remote_prob = 0.35;
  const apps::em3d::Em3dApp app(cfg, kNodes);
  const auto rcfg = rt::RuntimeConfig::dpa_deterministic(64);

  const auto a = app.run(faulty_net(7), rcfg);
  const auto b = app.run(faulty_net(7), rcfg);
  ASSERT_TRUE(a.all_completed());
  ASSERT_TRUE(b.all_completed());
  EXPECT_EQ(a.e_values, b.e_values);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].phase.elapsed, b.steps[i].phase.elapsed);
    EXPECT_EQ(a.steps[i].phase.faults.dropped_msgs,
              b.steps[i].phase.faults.dropped_msgs);
    EXPECT_EQ(a.steps[i].phase.rt.retries, b.steps[i].phase.rt.retries);
  }
  // Different seed => (almost surely) a different fault schedule.
  const auto c = app.run(faulty_net(8), rcfg);
  ASSERT_TRUE(c.all_completed());
  EXPECT_EQ(a.e_values, c.e_values);  // physics still identical...
  std::uint64_t drops_a = 0, drops_c = 0;
  for (const auto& s : a.steps) drops_a += s.phase.faults.dropped_msgs;
  for (const auto& s : c.steps) drops_c += s.phase.faults.dropped_msgs;
  EXPECT_NE(drops_a, drops_c);  // ...but the schedule moved
}

// The baseline engines survive faults too: their schedules are inherently
// timing-independent (blocking / stack-order execution), so physics must
// match the fault-free run without any special mode.
TEST(Chaos, BaselineEnginesSurviveFaults) {
  apps::em3d::Em3dConfig cfg;
  cfg.e_per_node = 128;
  cfg.h_per_node = 128;
  cfg.remote_prob = 0.35;
  const apps::em3d::Em3dApp app(cfg, kNodes);

  for (const auto& rcfg :
       {rt::RuntimeConfig::caching(), rt::RuntimeConfig::prefetching(8)}) {
    SCOPED_TRACE(rcfg.describe());
    const auto clean = app.run(base_net(), rcfg);
    ASSERT_TRUE(clean.all_completed());
    const auto chaos = app.run(faulty_net(11), rcfg);
    ASSERT_TRUE(chaos.all_completed());
    EXPECT_EQ(clean.e_values, chaos.e_values);
    EXPECT_EQ(clean.h_values, chaos.h_values);
    ChaosTotals::of(chaos).check_recovery();
  }
}

}  // namespace
}  // namespace dpa
