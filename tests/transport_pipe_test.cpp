// PipeChannel end-to-end: an em3d-style phase on 64 nodes round-trips
// through the socketpair frame codec with bit-identical physics, and — the
// chaos variant — survives frame drop/dup/reorder under ReliableChannel
// with the same bits.
//
// The workload mirrors the runtime's remote-accumulation pattern on em3d's
// bipartite graph: each node owns E and H values; an E-update phase walks
// the H-side dependencies, computes coeff * h where the H value lives, and
// accumulates -contrib into the E value's home — remotely via the channel,
// locally via the staging buffer. Deliveries are staged and committed in
// (src, per-sender index) order after the phase drains, exactly the
// runtime's deterministic two-level reduction, so the committed doubles
// must be BIT-identical across in-memory reference, clean pipe, and lossy
// pipe + reliability — any difference means the transport perturbed
// physics.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "support/rng.h"
#include "transport/pipe_channel.h"
#include "transport/reliable_channel.h"

namespace dpa::transport {
namespace {

constexpr std::uint32_t kNodes = 64;
constexpr std::uint32_t kEPerNode = 8;   // E values owned per node
constexpr std::uint32_t kHPerNode = 8;   // H values owned per node
constexpr std::uint32_t kDegree = 4;     // H-dependencies per E value
constexpr std::uint16_t kAccumTag = 3;   // the one application payload tag

// One E <- H dependency edge, grouped by the H side's owner (the sender).
struct Edge {
  std::uint32_t e_slot = 0;  // global E index (owner = e_slot / kEPerNode)
  std::uint32_t h_slot = 0;  // global H index (owner = h_slot / kHPerNode)
  double coeff = 0;
};

struct Graph {
  std::vector<double> e_init;
  std::vector<double> h;
  std::vector<std::vector<Edge>> by_sender;  // edges grouped by H owner
};

Graph build_graph(std::uint64_t seed) {
  Graph g;
  Rng rng(seed);
  g.e_init.resize(kNodes * kEPerNode);
  g.h.resize(kNodes * kHPerNode);
  for (auto& v : g.e_init) v = rng.next_double() * 2.0 - 1.0;
  for (auto& v : g.h) v = rng.next_double() * 2.0 - 1.0;
  g.by_sender.resize(kNodes);
  for (std::uint32_t e = 0; e < kNodes * kEPerNode; ++e) {
    for (std::uint32_t d = 0; d < kDegree; ++d) {
      Edge edge;
      edge.e_slot = e;
      // ~half the dependencies cross node boundaries, like em3d's
      // remote_prob — the rest exercise the local (no-wire) path.
      edge.h_slot = std::uint32_t(rng.next_below(kNodes * kHPerNode));
      edge.coeff = rng.next_double();
      g.by_sender[edge.h_slot / kHPerNode].push_back(edge);
    }
  }
  return g;
}

// One staged accumulation: applied in (src, index) order at commit, which
// pins floating-point summation order no matter how the transport
// reordered delivery.
struct Staged {
  NodeId src = 0;
  std::uint64_t index = 0;  // per-sender message index (dense from 0)
  std::uint32_t e_slot = 0;
  double contrib = 0;
};

std::vector<std::uint8_t> marshal(std::uint64_t index, std::uint32_t e_slot,
                                  double contrib) {
  std::vector<std::uint8_t> w(20);
  std::memcpy(w.data(), &index, 8);
  std::memcpy(w.data() + 8, &e_slot, 4);
  std::memcpy(w.data() + 12, &contrib, 8);
  return w;
}

Staged unmarshal(NodeId src, const FramePayload& p) {
  EXPECT_EQ(p.bytes.size(), 20u);
  Staged s;
  s.src = src;
  std::memcpy(&s.index, p.bytes.data(), 8);
  std::memcpy(&s.e_slot, p.bytes.data() + 8, 4);
  std::memcpy(&s.contrib, p.bytes.data() + 12, 8);
  return s;
}

std::vector<double> commit(const Graph& g, std::vector<Staged> staged) {
  std::sort(staged.begin(), staged.end(), [](const Staged& a, const Staged& b) {
    return a.src != b.src ? a.src < b.src : a.index < b.index;
  });
  std::vector<double> e = g.e_init;
  for (const Staged& s : staged) e[s.e_slot] -= s.contrib;
  return e;
}

// The phase, parameterized over "how a remote contribution travels". The
// send function receives (sender, e-owner, marshalled bytes); local
// contributions stage directly (they never hit a wire, as in the engine).
void run_phase(const Graph& g, std::vector<Staged>* staged_out,
               const std::function<void(NodeId, NodeId, std::uint64_t,
                                        std::vector<std::uint8_t>)>&
                   send_remote) {
  std::vector<Staged>& staged = *staged_out;
  for (NodeId sender = 0; sender < kNodes; ++sender) {
    std::uint64_t index = 0;
    for (const Edge& edge : g.by_sender[sender]) {
      const double contrib = edge.coeff * g.h[edge.h_slot];
      const NodeId home = edge.e_slot / kEPerNode;
      if (home == sender) {
        Staged s;
        s.src = sender;
        s.index = index++;
        s.e_slot = edge.e_slot;
        s.contrib = contrib;
        staged.push_back(s);
      } else {
        send_remote(sender, home, index,
                    marshal(index, edge.e_slot, contrib));
        ++index;
      }
    }
  }
}

std::uint64_t count_remote(const Graph& g) {
  std::uint64_t n = 0;
  for (NodeId sender = 0; sender < kNodes; ++sender)
    for (const Edge& edge : g.by_sender[sender])
      if (edge.e_slot / kEPerNode != sender) ++n;
  return n;
}

// Reference: every contribution staged in memory, no transport.
std::vector<double> run_reference(const Graph& g) {
  std::vector<Staged> staged;
  run_phase(g, &staged,
            [&](NodeId src, NodeId, std::uint64_t,
                std::vector<std::uint8_t> w) {
              FramePayload p;
              p.bytes = std::move(w);
              staged.push_back(unmarshal(src, p));
            });
  return commit(g, std::move(staged));
}

TEST(PipeChannel, Em3dPhaseRoundTripsBitIdentical) {
  const Graph g = build_graph(0xE3D1);
  const std::vector<double> want = run_reference(g);

  PipeChannel pipe(kNodes, /*train_max=*/8);
  pipe.set_epoch(1);
  std::vector<Staged> staged;
  pipe.set_deliver([&](const FrameHeader& h, const FramePayload& p) {
    EXPECT_EQ(h.epoch, 1u);
    EXPECT_EQ(p.tag, kAccumTag);
    staged.push_back(unmarshal(h.src, p));
  });
  run_phase(g, &staged,
            [&](NodeId src, NodeId dst, std::uint64_t,
                std::vector<std::uint8_t> w) {
              TrainItem item;
              item.tag = kAccumTag;
              item.wire = std::move(w);
              pipe.send_train(nullptr, src, dst, std::move(item));
            });
  for (NodeId n = 0; n < kNodes; ++n) pipe.flush(nullptr, n);
  pipe.drain();

  EXPECT_EQ(pipe.tx_backlog(), 0u);
  const PipeChannel::WireStats& ws = pipe.wire_stats();
  EXPECT_EQ(ws.payloads_recv, count_remote(g));
  EXPECT_EQ(ws.frames_recv, ws.frames_sent);
  EXPECT_EQ(ws.dropped_frames, 0u);
  EXPECT_GT(ws.frames_sent, 0u);
  // Trains amortize: strictly fewer frames than messages.
  EXPECT_LT(ws.frames_sent, ws.payloads_recv);
  std::uint64_t trains = 0;
  for (NodeId n = 0; n < kNodes; ++n) trains += pipe.trains_sent(n);
  EXPECT_EQ(trains, ws.frames_sent);

  const std::vector<double> got = commit(g, std::move(staged));
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "e[" << i << "] diverged";  // bit-identical
}

TEST(PipeChannel, ChaosPhaseConvergesBitIdenticalUnderReliable) {
  const Graph g = build_graph(0xE3D1);
  const std::vector<double> want = run_reference(g);

  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    PipeChannel pipe(kNodes, /*train_max=*/8);
    pipe.set_epoch(2);
    ChannelFaults faults;
    faults.drop = 0.15;
    faults.dup = 0.10;
    faults.reorder = 0.10;
    faults.seed = seed;
    pipe.set_faults(faults);
    EXPECT_FALSE(pipe.caps().lossless);

    RetryPolicy policy;
    policy.timeout_ns = 2'000'000;
    ReliableChannel rc(pipe, kNodes, policy);
    ASSERT_TRUE(rc.caps().lossless);
    std::vector<Staged> staged;
    rc.set_deliver([&](const FrameHeader& h, const FramePayload& p) {
      staged.push_back(unmarshal(h.src, p));
    });

    run_phase(g, &staged,
              [&](NodeId src, NodeId dst, std::uint64_t,
                  std::vector<std::uint8_t> w) {
                TrainItem item;
                item.tag = kAccumTag;
                item.wire = std::move(w);
                rc.send_train(nullptr, src, dst, std::move(item));
              });
    for (NodeId n = 0; n < kNodes; ++n) rc.flush(nullptr, n);

    // Drive the protocol on virtual time until every sequenced message is
    // acked. Retransmission — not luck — is what ends this loop.
    Time now = 0;
    std::uint32_t rounds = 0;
    while (rc.in_flight() > 0) {
      ASSERT_LT(++rounds, 100000u) << "reliability failed to converge, "
                                   << rc.in_flight() << " still in flight";
      rc.poll();
      now += 1'000'000;  // 1 ms of virtual time per round
      rc.pump(now);
    }
    rc.poll();

    const ReliableChannel::Stats& st = rc.stats();
    const PipeChannel::WireStats& ws = pipe.wire_stats();
    EXPECT_GT(ws.dropped_frames, 0u) << "seed " << seed;
    EXPECT_GT(st.retries, 0u) << "seed " << seed;
    EXPECT_GT(st.acks_recv, 0u) << "seed " << seed;
    // Dups come from the fault plan AND from retransmissions whose
    // original survived; either way the dedup layer ate them. Exactly-once:
    // every edge staged exactly one contribution — remote ones over the
    // lossy wire, local ones directly.
    EXPECT_EQ(staged.size(), std::size_t(kNodes) * kEPerNode * kDegree)
        << "seed " << seed;

    const std::vector<double> got = commit(g, std::move(staged));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], want[i])
          << "seed " << seed << ": e[" << i << "] diverged";
  }
}

TEST(PipeChannel, ControlFramesCarryTheControlFlag) {
  // Acks travel as single-payload control frames; the flag is how a future
  // prioritizing transport will tell them apart without decoding bodies.
  PipeChannel pipe(2, /*train_max=*/4);
  ReliableChannel rc(pipe, 2, RetryPolicy{});
  std::uint64_t data_frames = 0;
  rc.set_deliver([&](const FrameHeader& h, const FramePayload&) {
    EXPECT_EQ(h.flags & kFrameFlagControl, 0);
    ++data_frames;
  });
  TrainItem item;
  item.tag = 1;
  item.wire = {1, 2, 3};
  rc.send_train(nullptr, 0, 1, std::move(item));
  rc.flush(nullptr, 0);
  Time now = 0;
  std::uint32_t rounds = 0;
  while (rc.in_flight() > 0) {
    ASSERT_LT(++rounds, 100u);
    rc.poll();
    rc.pump(now += 1'000'000);
  }
  EXPECT_EQ(data_frames, 1u);
  EXPECT_EQ(rc.stats().acks_sent, 1u);
  EXPECT_EQ(rc.stats().acks_recv, 1u);
  EXPECT_EQ(rc.stats().retries, 0u);
}

// ---------- endpoint mode + peer death ----------
//
// The multi-process configuration: each side of a socketpair lives in a
// different channel (in production, a different process). A dead peer must
// surface as ChannelStatus::kPeerDown — never a SIGPIPE, never an abort —
// because the coordinator turns it into a reported error.

std::pair<std::unique_ptr<PipeChannel>, std::unique_ptr<PipeChannel>>
make_endpoint_pair(std::uint32_t num_nodes, std::uint32_t train_max) {
  int sv[2] = {-1, -1};
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto a = std::make_unique<PipeChannel>(num_nodes, train_max,
                                         PipeChannel::Endpoint{sv[0]});
  auto b = std::make_unique<PipeChannel>(num_nodes, train_max,
                                         PipeChannel::Endpoint{sv[1]});
  return {std::move(a), std::move(b)};
}

TEST(PipeEndpoint, TwoChannelsRoundTripOverOneSocketpair) {
  auto [a, b] = make_endpoint_pair(2, /*train_max=*/4);
  std::vector<std::vector<std::uint8_t>> got;
  b->set_deliver([&](const FrameHeader& h, const FramePayload& p) {
    EXPECT_EQ(h.src, 0u);
    EXPECT_EQ(h.dst, 1u);
    got.push_back(p.bytes);
  });
  a->set_deliver([](const FrameHeader&, const FramePayload&) {
    FAIL() << "nothing was sent toward side A";
  });

  TrainItem item;
  item.tag = 7;
  item.wire = {1, 2, 3, 4};
  a->send_train(nullptr, 0, 1, std::move(item));
  a->flush(nullptr, 0);
  for (int i = 0; i < 100 && got.empty(); ++i) b->poll();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(a->status(), ChannelStatus::kOk);
  EXPECT_EQ(b->status(), ChannelStatus::kOk);
}

TEST(PipeEndpoint, PeerCloseSurfacesAsPeerDownOnRead) {
  auto [a, b] = make_endpoint_pair(2, /*train_max=*/4);
  b.reset();  // peer vanishes: its destructor closes the other half
  a->set_deliver([](const FrameHeader&, const FramePayload&) {});
  EXPECT_EQ(a->poll(), 0u);  // EOF, not a crash
  EXPECT_EQ(a->status(), ChannelStatus::kPeerDown);
  // The condition is sticky and polling a dead channel stays a no-op.
  EXPECT_EQ(a->poll(), 0u);
  EXPECT_EQ(a->status(), ChannelStatus::kPeerDown);
}

TEST(PipeEndpoint, WriteToDeadPeerIsPeerDownNotSigpipe) {
  auto [a, b] = make_endpoint_pair(2, /*train_max=*/4);
  b.reset();
  a->set_deliver([](const FrameHeader&, const FramePayload&) {});
  // A raw write() here would raise SIGPIPE and kill the process; the
  // channel sends with MSG_NOSIGNAL and maps EPIPE to kPeerDown. Reaching
  // the assertions below IS the no-SIGPIPE proof.
  TrainItem item;
  item.tag = 7;
  item.wire.assign(4096, 0xAB);
  a->send_train(nullptr, 0, 1, std::move(item));
  a->flush(nullptr, 0);
  a->poll();
  EXPECT_EQ(a->status(), ChannelStatus::kPeerDown);
}

TEST(PipeEndpoint, DrainReturnsInsteadOfSpinningOnADeadPeer) {
  auto [a, b] = make_endpoint_pair(2, /*train_max=*/4);
  b.reset();
  a->set_deliver([](const FrameHeader&, const FramePayload&) {});
  // Queue more than a kernel buffer could absorb unanswered, then drain:
  // the "until no progress" loop must bail on peer-down rather than wait
  // forever for the dead side to read.
  for (int i = 0; i < 64; ++i) {
    TrainItem item;
    item.tag = 7;
    item.wire.assign(65536, std::uint8_t(i));
    a->send_train(nullptr, 0, 1, std::move(item));
  }
  a->flush(nullptr, 0);
  a->drain();  // must return (the test would hang here on a regression)
  EXPECT_EQ(a->status(), ChannelStatus::kPeerDown);
}

TEST(PipeEndpoint, ReliableChannelReportsGaveUpInsteadOfAborting) {
  // The full multi-process data-link stack over a dead peer: Reliable's
  // retransmissions all hit the closed socket, max_retries exhausts, and
  // the channel reports gave_up through the peer-dead callback instead of
  // crashing the process.
  auto [a, b] = make_endpoint_pair(2, /*train_max=*/4);
  b.reset();
  RetryPolicy policy;
  policy.timeout_ns = 1'000'000;
  policy.max_retries = 5;
  ReliableChannel rc(*a, 2, policy);
  rc.set_deliver([](const FrameHeader&, const FramePayload&) {});
  std::vector<std::pair<NodeId, std::uint32_t>> dead;
  rc.set_on_peer_dead([&](NodeId dst, std::uint64_t, std::uint32_t sends) {
    dead.push_back({dst, sends});
  });

  TrainItem item;
  item.tag = 7;
  item.wire = {9, 9, 9};
  rc.send_train(nullptr, 0, 1, std::move(item));
  rc.flush(nullptr, 0);

  Time now = 0;
  std::uint32_t rounds = 0;
  while (rc.in_flight() > 0) {
    ASSERT_LT(++rounds, 1000u) << "give-up never fired";
    rc.poll();
    rc.pump(now += 10'000'000);
  }
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].first, 1u);
  EXPECT_EQ(dead[0].second, 1u + policy.max_retries);
  EXPECT_EQ(rc.stats().gave_up, 1u);
  EXPECT_EQ(a->status(), ChannelStatus::kPeerDown);
}

}  // namespace
}  // namespace dpa::transport
