#include <gtest/gtest.h>

#include "gas/heap.h"
#include "runtime/phase.h"
#include "sim/trace.h"
#include "support/json.h"

namespace dpa {
namespace {

// ---------- JsonWriter ----------

TEST(Json, ObjectWithFields) {
  JsonWriter w;
  {
    auto o = w.obj();
    w.field("name", "dpa").field("nodes", std::int64_t(64));
    w.field("ratio", 0.5).field("ok", true);
  }
  EXPECT_EQ(w.str(),
            R"({"name":"dpa","nodes":64,"ratio":0.5,"ok":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  {
    auto o = w.obj();
    {
      auto a = w.arr("times");
      w.value(1.5).value(2.5);
    }
    auto inner = w.obj("stats");
    w.field("msgs", std::uint64_t(7));
  }
  EXPECT_EQ(w.str(), R"({"times":[1.5,2.5],"stats":{"msgs":7}})");
}

TEST(Json, ArrayOfObjects) {
  JsonWriter w;
  {
    auto a = w.arr();
    for (int i = 0; i < 2; ++i) {
      auto o = w.obj();
      w.field("i", std::int64_t(i));
    }
  }
  EXPECT_EQ(w.str(), R"([{"i":0},{"i":1}])");
}

TEST(Json, EscapesStrings) {
  JsonWriter w;
  {
    auto o = w.obj();
    w.field("s", "a\"b\\c\nd");
  }
  EXPECT_EQ(w.str(), R"({"s":"a\"b\\c\nd"})");
}

TEST(Json, MisuseDies) {
  JsonWriter w;
  auto o = w.obj();
  EXPECT_DEATH(w.value(1.0), "bare value outside an array");
}

TEST(Json, UnclosedScopeDies) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        auto o = w.obj();
        (void)w.str();
      },
      "unclosed");
}

// ---------- Timeline tracing ----------

TEST(Trace, RecordsTasksAndMessages) {
  sim::Machine m(2, sim::NetParams{});
  sim::Timeline timeline;
  m.set_trace(&timeline);
  m.node(0).post([&](sim::Cpu& cpu) {
    cpu.charge(100);
    m.network().send(0, 1, 32, cpu.logical_now(), [] {});
  });
  m.engine().run();
  ASSERT_EQ(timeline.tasks().size(), 1u);
  EXPECT_EQ(timeline.tasks()[0].node, 0u);
  EXPECT_EQ(timeline.tasks()[0].end - timeline.tasks()[0].start, 100);
  ASSERT_EQ(timeline.messages().size(), 1u);
  EXPECT_EQ(timeline.messages()[0].bytes, 32u);
  EXPECT_GT(timeline.messages()[0].arrive, timeline.messages()[0].depart);
}

TEST(Trace, NodeBusyMatchesStats) {
  sim::Machine m(1, sim::NetParams{});
  sim::Timeline timeline;
  m.set_trace(&timeline);
  m.node(0).post([](sim::Cpu& cpu) { cpu.charge(70); });
  m.node(0).post([](sim::Cpu& cpu) { cpu.charge(30); });
  m.engine().run();
  EXPECT_EQ(timeline.node_busy(0), 100);
  EXPECT_EQ(timeline.node_busy(0), m.node(0).stats().busy_total);
}

TEST(Trace, DumpIsTimeOrdered) {
  sim::Machine m(2, sim::NetParams{});
  sim::Timeline timeline;
  m.set_trace(&timeline);
  m.node(1).post([](sim::Cpu& cpu) { cpu.charge(10); });
  m.node(0).post([](sim::Cpu& cpu) { cpu.charge(20); });
  m.engine().run();
  const std::string dump = timeline.dump();
  EXPECT_NE(dump.find("node 0"), std::string::npos);
  EXPECT_NE(dump.find("node 1"), std::string::npos);
}

TEST(Trace, NodeBusyOfUntracedNodeIsZero) {
  sim::Timeline timeline;
  EXPECT_EQ(timeline.node_busy(0), 0);
  timeline.task(0, 10, 30);
  EXPECT_EQ(timeline.node_busy(0), 20);
  EXPECT_EQ(timeline.node_busy(7), 0);  // never ran anything
}

TEST(Trace, DumpOrdersMixedEventsByStartTime) {
  sim::Timeline timeline;
  timeline.task(1, 500, 600);
  timeline.message(0, 1, 64, 200, 450);
  timeline.task(0, 100, 250);
  const std::string dump = timeline.dump();
  const auto first = dump.find("[100..250]");
  const auto second = dump.find("[200..450]");
  const auto third = dump.find("[500..600]");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
}

TEST(Trace, DumpHonorsLimitAndReportsOverflow) {
  sim::Timeline timeline;
  for (int i = 0; i < 5; ++i)
    timeline.task(0, sim::Time(i * 10), sim::Time(i * 10 + 5));
  const std::string dump = timeline.dump(/*limit=*/2);
  EXPECT_NE(dump.find("[0..5]"), std::string::npos);
  EXPECT_NE(dump.find("[10..15]"), std::string::npos);
  EXPECT_EQ(dump.find("[20..25]"), std::string::npos);
  EXPECT_NE(dump.find("... (3 more)"), std::string::npos);
}

TEST(Trace, WholePhaseUnderDpaTracesConsistently) {
  struct Obj {
    double v;
  };
  rt::Cluster cluster(2, sim::NetParams{});
  sim::Timeline timeline;
  cluster.machine().set_trace(&timeline);
  std::vector<gas::GPtr<Obj>> objs;
  for (int i = 0; i < 16; ++i)
    objs.push_back(cluster.heap.make<Obj>(1, Obj{1.0}));
  std::vector<rt::NodeWork> work(2);
  work[0].count = 16;
  work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
    ctx.require(objs[std::size_t(i)],
                [](rt::Ctx& c, const Obj&) { c.charge(500); });
  };
  rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(8));
  const auto r = runner.run(std::move(work));
  ASSERT_TRUE(r.completed);
  // Every traced message matches the network's own count, and per-node
  // traced busy time matches the processor stats.
  EXPECT_EQ(timeline.messages().size(), r.net.messages);
  EXPECT_EQ(timeline.node_busy(0),
            cluster.machine().node(0).stats().busy_total);
  EXPECT_EQ(timeline.node_busy(1),
            cluster.machine().node(1).stats().busy_total);
}

}  // namespace
}  // namespace dpa
