#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fm/fm.h"
#include "sim/machine.h"

namespace dpa::fm {
namespace {

using sim::Cpu;
using sim::Machine;
using sim::NetParams;
using sim::Time;
using sim::Work;

struct IntPayload {
  int value;
};

NetParams test_params() {
  NetParams p;
  p.send_overhead = 100;
  p.recv_overhead = 200;
  p.latency = 1000;
  p.ns_per_byte = 1.0;
  p.per_msg_wire = 0;
  p.nic_serialize = false;
  p.mtu_bytes = 256;
  return p;
}

TEST(Fm, DeliversToHandlerWithPayload) {
  Machine m(2, test_params());
  FmLayer fm(m);
  int got = -1;
  NodeId got_src = 99;
  const HandlerId h = fm.register_handler(
      "test", [&](Cpu&, const Packet& pkt) {
        got = static_cast<IntPayload*>(pkt.data.get())->value;
        got_src = pkt.src;
      });
  m.node(0).post([&](Cpu& cpu) {
    fm.send(cpu, 0, 1, h, std::make_shared<IntPayload>(IntPayload{42}), 16);
  });
  m.engine().run();
  EXPECT_EQ(got, 42);
  EXPECT_EQ(got_src, 0u);
}

TEST(Fm, ChargesSendAndRecvOverheads) {
  Machine m(2, test_params());
  FmLayer fm(m);
  const HandlerId h = fm.register_handler("noop", [](Cpu&, const Packet&) {});
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 16); });
  m.engine().run();
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kComm)], 100);
  EXPECT_EQ(m.node(1).stats().busy[int(Work::kComm)], 200);
}

TEST(Fm, HandlerRunsAtArrivalTime) {
  Machine m(2, test_params());
  FmLayer fm(m);
  Time handler_time = -1;
  const HandlerId h = fm.register_handler(
      "t", [&](Cpu& cpu, const Packet&) { handler_time = cpu.logical_now(); });
  m.node(0).post([&](Cpu& cpu) {
    cpu.charge(500);  // message departs at sender logical time
    fm.send(cpu, 0, 1, h, nullptr, 100);
  });
  m.engine().run();
  // depart 500 (+100 send overhead inside send) + latency 1000 + 100 bytes,
  // then 200ns recv overhead before the handler body observes logical_now.
  EXPECT_EQ(handler_time, 600 + 1000 + 100 + 200);
}

TEST(Fm, SegmentsPayloadsLargerThanMtu) {
  Machine m(2, test_params());  // MTU 256
  FmLayer fm(m);
  int deliveries = 0;
  const HandlerId h =
      fm.register_handler("seg", [&](Cpu&, const Packet&) { ++deliveries; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 1000); });
  m.engine().run();
  EXPECT_EQ(deliveries, 1);  // handler fires once, on the last fragment
  EXPECT_EQ(fm.node_stats(0).msgs_sent, 1u);
  EXPECT_EQ(fm.node_stats(0).frags_sent, 4u);  // ceil(1000/256)
  EXPECT_EQ(m.network().stats().messages, 4u);
  EXPECT_EQ(fm.node_stats(1).bytes_recv, 1000u);
  // Per-fragment send overhead on the source.
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kComm)], 400);
}

TEST(Fm, SegmentedDeliveryWaitsForLastFragment) {
  auto p = test_params();
  p.nic_serialize = true;  // fragments serialize on the NIC
  Machine m(2, p);
  FmLayer fm(m);
  Time delivered_at = -1;
  const HandlerId h = fm.register_handler(
      "seg", [&](Cpu&, const Packet&) { delivered_at = m.engine().now(); });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 512); });
  m.engine().run();
  // Two 256B fragments. Frag 1 injects at t=100 (after its send overhead)
  // and holds the NIC until 356; frag 2 injects at 356 and arrives at
  // 356 + latency 1000 + wire 256 = 1612.
  EXPECT_EQ(delivered_at, 1612);
}

TEST(Fm, ZeroByteMessageStillOneFragment) {
  Machine m(2, test_params());
  FmLayer fm(m);
  int deliveries = 0;
  const HandlerId h =
      fm.register_handler("z", [&](Cpu&, const Packet&) { ++deliveries; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 0); });
  m.engine().run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(fm.node_stats(0).frags_sent, 1u);
}

TEST(Fm, StatsPerNodeAndAggregate) {
  Machine m(3, test_params());
  FmLayer fm(m);
  const HandlerId h = fm.register_handler("s", [](Cpu&, const Packet&) {});
  m.node(0).post([&](Cpu& cpu) {
    fm.send(cpu, 0, 1, h, nullptr, 10);
    fm.send(cpu, 0, 2, h, nullptr, 20);
  });
  m.node(1).post([&](Cpu& cpu) { fm.send(cpu, 1, 2, h, nullptr, 30); });
  m.engine().run();
  EXPECT_EQ(fm.node_stats(0).msgs_sent, 2u);
  EXPECT_EQ(fm.node_stats(0).bytes_sent, 30u);
  EXPECT_EQ(fm.node_stats(2).msgs_recv, 2u);
  EXPECT_EQ(fm.node_stats(2).bytes_recv, 50u);
  const FmNodeStats total = fm.aggregate_stats();
  EXPECT_EQ(total.msgs_sent, 3u);
  EXPECT_EQ(total.msgs_recv, 3u);
  EXPECT_EQ(total.bytes_sent, 60u);
}

TEST(Fm, ResetStatsClears) {
  Machine m(2, test_params());
  FmLayer fm(m);
  const HandlerId h = fm.register_handler("s", [](Cpu&, const Packet&) {});
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 10); });
  m.engine().run();
  fm.reset_stats();
  EXPECT_EQ(fm.node_stats(0).msgs_sent, 0u);
  EXPECT_EQ(fm.aggregate_stats().bytes_recv, 0u);
}

TEST(Fm, UnregisteredHandlerDies) {
  Machine m(2, test_params());
  FmLayer fm(m);
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, 7, nullptr, 1); });
  EXPECT_DEATH(m.engine().run(), "unregistered handler");
}

TEST(Fm, LoopbackSendDeliversToSelf) {
  Machine m(2, test_params());
  FmLayer fm(m);
  int got = 0;
  const HandlerId h =
      fm.register_handler("self", [&](Cpu&, const Packet&) { ++got; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 0, h, nullptr, 8); });
  m.engine().run();
  EXPECT_EQ(got, 1);  // loopback still pays the wire (FM semantics)
  EXPECT_EQ(fm.node_stats(0).msgs_sent, 1u);
  EXPECT_EQ(fm.node_stats(0).msgs_recv, 1u);
}

// ---------- Faults at message granularity ----------

TEST(Fm, DroppedMessageNeverReachesTheHandler) {
  auto p = test_params();
  p.faults.drop = 1.0;  // every message dies on the wire
  Machine m(2, p);
  FmLayer fm(m);
  int deliveries = 0;
  const HandlerId h =
      fm.register_handler("d", [&](Cpu&, const Packet&) { ++deliveries; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 600); });
  m.engine().run();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(fm.node_stats(1).msgs_recv, 0u);
  EXPECT_EQ(m.network().injector()->stats().dropped_msgs, 1u);
  // The loss is physical, not accounting: the sender still paid its
  // per-fragment software overhead and the fragments occupied the wire.
  EXPECT_EQ(fm.node_stats(0).msgs_sent, 1u);
  EXPECT_EQ(fm.node_stats(0).frags_sent, 3u);  // ceil(600/256)
  EXPECT_EQ(m.network().stats().messages, 3u);
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kComm)], 300);
}

TEST(Fm, DuplicatedMessageDeliversTwice) {
  auto p = test_params();
  p.faults.dup = 1.0;  // every message is doubled
  Machine m(2, p);
  FmLayer fm(m);
  int deliveries = 0;
  const HandlerId h =
      fm.register_handler("d", [&](Cpu&, const Packet&) { ++deliveries; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 16); });
  m.engine().run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(m.network().injector()->stats().dup_msgs, 1u);
  // The duplicate is the NIC's doing: the sender charged software overhead
  // for one message only.
  EXPECT_EQ(m.node(0).stats().busy[int(Work::kComm)], 100);
}

TEST(Fm, SegmentedDuplicateDeliversCompleteTrains) {
  // Both the original and the duplicate are full multi-fragment trains with
  // distinct train ids; each completes independently.
  auto p = test_params();
  p.faults.dup = 1.0;
  Machine m(2, p);
  FmLayer fm(m);
  int deliveries = 0;
  const HandlerId h =
      fm.register_handler("d", [&](Cpu&, const Packet&) { ++deliveries; });
  m.node(0).post([&](Cpu& cpu) { fm.send(cpu, 0, 1, h, nullptr, 1000); });
  m.engine().run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(m.network().stats().messages, 8u);  // 2 trains x 4 fragments
}

TEST(Fm, FaultFreePlanKeepsDeliveryExact) {
  // A present-but-all-zero plan must behave exactly like no plan at all.
  auto p = test_params();
  p.faults = sim::FaultPlan{};
  Machine m(2, p);
  FmLayer fm(m);
  EXPECT_EQ(m.network().injector(), nullptr);
}

TEST(Fm, MessagesBetweenManyNodesAllArrive) {
  Machine m(8, test_params());
  FmLayer fm(m);
  int count = 0;
  const HandlerId h =
      fm.register_handler("c", [&](Cpu&, const Packet&) { ++count; });
  for (NodeId i = 0; i < 8; ++i) {
    m.node(i).post([&, i](Cpu& cpu) {
      for (NodeId j = 0; j < 8; ++j)
        if (j != i) fm.send(cpu, i, j, h, nullptr, 8);
    });
  }
  m.engine().run();
  EXPECT_EQ(count, 56);
}

}  // namespace
}  // namespace dpa::fm
