#include <gtest/gtest.h>

#include "compiler/interp.h"
#include "compiler/opt.h"
#include "compiler/parser.h"
#include "compiler/partition.h"

namespace dpa::compiler {
namespace {

TEST(Fold, FoldsConstantSubtrees) {
  std::size_t folded = 0;
  // (1 + 2) * x  ->  3 * x
  const ExprPtr e = Expr::mul(Expr::add(Expr::c(1), Expr::c(2)),
                              Expr::v("x"));
  const ExprPtr f = fold_expr(e, &folded);
  EXPECT_EQ(folded, 1u);
  ASSERT_EQ(f->kind, Expr::K::kBin);
  EXPECT_EQ(f->lhs->kind, Expr::K::kConst);
  EXPECT_DOUBLE_EQ(f->lhs->cval, 3.0);
}

TEST(Fold, FoldsToSingleConstant) {
  std::size_t folded = 0;
  const ExprPtr e =
      Expr::mul(Expr::add(Expr::c(1), Expr::c(2)), Expr::c(4));
  const ExprPtr f = fold_expr(e, &folded);
  EXPECT_EQ(folded, 2u);
  EXPECT_EQ(f->kind, Expr::K::kConst);
  EXPECT_DOUBLE_EQ(f->cval, 12.0);
}

TEST(Fold, LeavesVariableExprsAlone) {
  std::size_t folded = 0;
  const ExprPtr e = Expr::add(Expr::v("a"), Expr::v("b"));
  const ExprPtr f = fold_expr(e, &folded);
  EXPECT_EQ(folded, 0u);
  EXPECT_EQ(f.get(), e.get());  // structurally shared, not rebuilt
}

TEST(Fold, ComparisonFolds) {
  std::size_t folded = 0;
  const ExprPtr f =
      fold_expr(Expr::less(Expr::c(1), Expr::c(2)), &folded);
  EXPECT_DOUBLE_EQ(f->cval, 1.0);
}

TEST(Dce, RemovesUnusedLets) {
  const Module m = parse_module(R"(
class A { scalar x; }
fn f(a : A) {
  v = a->x;
  dead = v * 2;
  sum += v;
}
)");
  std::size_t removed = 0;
  const auto body = eliminate_dead_lets(m.functions[0].body, &removed);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(body.size(), 2u);
}

TEST(Dce, KeepsLetsUsedInBranches) {
  const Module m = parse_module(R"(
class A { scalar x; }
fn f(a : A) {
  v = a->x;
  t = v + 1;
  if (v < 0.5) { sum += t; }
}
)");
  std::size_t removed = 0;
  const auto body = eliminate_dead_lets(m.functions[0].body, &removed);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(body.size(), 3u);
}

TEST(Dce, CascadesThroughDeadChains) {
  const Module m = parse_module(R"(
class A { scalar x; }
fn f(a : A) {
  v = a->x;
  d1 = v + 1;
  d2 = d1 * 2;
  sum += v;
}
)");
  OptStats stats;
  const Module o = optimize(m, &stats);
  EXPECT_EQ(stats.dead_lets_removed, 2u);  // d2 first, then d1
  EXPECT_EQ(o.functions[0].body.size(), 2u);
}

TEST(Optimize, PreservesSemantics) {
  const Module m = parse_module(R"(
class Node { scalar val; ptr next : Node; }
fn walk(n : Node) {
  v = n->val;
  scale = 2 * 3 + 1;
  unused = v * 99;
  sum += v * scale;
  nx = n->next;
  spawn walk(nx);
}
)");
  OptStats stats;
  const Module o = optimize(m, &stats);
  EXPECT_GE(stats.folded_exprs, 1u);
  EXPECT_GE(stats.dead_lets_removed, 1u);

  // Build a tiny list and compare direct interpretation.
  rt::Cluster cluster(1, sim::NetParams{});
  std::vector<gas::GPtr<Record>> nodes;
  for (int i = 0; i < 5; ++i) {
    Record r = make_record(m, "Node");
    r.scalars[0] = double(i) + 0.25;
    nodes.push_back(cluster.heap.make<Record>(0, std::move(r)));
  }
  for (int i = 0; i + 1 < 5; ++i)
    gas::GlobalHeap::mutate(nodes[std::size_t(i)])->ptrs[0] =
        nodes[std::size_t(i + 1)];

  Accums before, after;
  interp_direct(m, "walk", nodes[0].addr, before);
  interp_direct(o, "walk", nodes[0].addr, after);
  EXPECT_DOUBLE_EQ(before["sum"], after["sum"]);
}

TEST(Optimize, ShrinksThreadTemplates) {
  const Module m = parse_module(R"(
class Node { scalar val; ptr peer : Node; }
fn f(n : Node) {
  v = n->val;
  dead = v * 7;
  p = n->peer;
  pv = p->val;
  sum += v + pv;
}
)");
  const auto raw = partition(m).stats();
  const auto opt = partition(optimize(m)).stats();
  EXPECT_EQ(opt.num_templates, raw.num_templates);
  // The dead let disappears from the emitted ops (same reads though).
  EXPECT_EQ(opt.total_hoisted_reads, raw.total_hoisted_reads);
}

TEST(Optimize, IdempotentOnCleanCode) {
  const Module m = parse_module(
      "class A { scalar x; }\nfn f(a : A) { v = a->x; sum += v; }");
  OptStats stats;
  optimize(m, &stats);
  EXPECT_EQ(stats.folded_exprs, 0u);
  EXPECT_EQ(stats.dead_lets_removed, 0u);
}

}  // namespace
}  // namespace dpa::compiler
