#include <gtest/gtest.h>

#include <unordered_set>

#include "gas/global_ptr.h"
#include "gas/heap.h"

namespace dpa::gas {
namespace {

struct Body {
  double mass;
  double pos[3];
};

TEST(GlobalHeap, AllocatesWithHome) {
  GlobalHeap heap(4);
  GPtr<Body> p = heap.make<Body>(2, Body{1.5, {0, 0, 0}});
  ASSERT_TRUE(bool(p));
  EXPECT_EQ(p.home, 2u);
  EXPECT_DOUBLE_EQ(p.addr->mass, 1.5);
  EXPECT_TRUE(p.local_to(2));
  EXPECT_FALSE(p.local_to(0));
}

TEST(GlobalHeap, TracksPerNodeStats) {
  GlobalHeap heap(2);
  heap.make<Body>(0);
  heap.make<Body>(0);
  heap.make<Body>(1);
  EXPECT_EQ(heap.node_stats(0).objects, 2u);
  EXPECT_EQ(heap.node_stats(0).bytes, 2 * sizeof(Body));
  EXPECT_EQ(heap.node_stats(1).objects, 1u);
  EXPECT_EQ(heap.total_objects(), 3u);
}

TEST(GlobalHeap, AddressesAreStableAndDistinct) {
  GlobalHeap heap(1);
  std::unordered_set<const void*> addrs;
  std::vector<GPtr<Body>> ptrs;
  for (int i = 0; i < 1000; ++i)
    ptrs.push_back(heap.make<Body>(0, Body{double(i), {0, 0, 0}}));
  for (const auto& p : ptrs) addrs.insert(p.addr);
  EXPECT_EQ(addrs.size(), 1000u);
  // Growth of the heap's bookkeeping must not move objects.
  for (int i = 0; i < 1000; ++i)
    EXPECT_DOUBLE_EQ(ptrs[std::size_t(i)].addr->mass, double(i));
}

TEST(GlobalHeap, MutateGivesWritableAccess) {
  GlobalHeap heap(1);
  GPtr<Body> p = heap.make<Body>(0, Body{1.0, {0, 0, 0}});
  GlobalHeap::mutate(p)->mass = 9.0;
  EXPECT_DOUBLE_EQ(p.addr->mass, 9.0);
}

TEST(GlobalHeap, RehomeMovesAccounting) {
  GlobalHeap heap(2);
  GPtr<Body> p = heap.make<Body>(0);
  p = heap.rehome(p, 1);
  EXPECT_EQ(p.home, 1u);
  EXPECT_EQ(heap.node_stats(0).objects, 0u);
  EXPECT_EQ(heap.node_stats(0).bytes, 0u);
  EXPECT_EQ(heap.node_stats(1).objects, 1u);
}

TEST(GlobalHeap, BadHomeDies) {
  GlobalHeap heap(2);
  EXPECT_DEATH(heap.make<Body>(5), "bad home node");
}

TEST(GlobalRef, TypedPtrProducesErasedRef) {
  GlobalHeap heap(3);
  GPtr<Body> p = heap.make<Body>(1);
  const GlobalRef r = p.ref();
  EXPECT_EQ(r.addr, static_cast<const void*>(p.addr));
  EXPECT_EQ(r.home, 1u);
  EXPECT_EQ(r.bytes, sizeof(Body));
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE(GlobalRef{}.valid());
}

TEST(GlobalRef, EqualityAndHashByAddress) {
  GlobalHeap heap(2);
  GPtr<Body> a = heap.make<Body>(0);
  GPtr<Body> b = heap.make<Body>(0);
  EXPECT_TRUE(a.ref() == a.ref());
  EXPECT_FALSE(a.ref() == b.ref());
  GlobalRefHash h;
  EXPECT_EQ(h(a.ref()), h(a.ref()));
}

}  // namespace
}  // namespace dpa::gas
