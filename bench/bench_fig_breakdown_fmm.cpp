// Reproduces the FMM breakdown figure: the paper shows the force phase of
// FMM (32,768 particles, 29 terms) under DPA with strip size 300 on 16
// nodes, with speedups atop each bar, for Base / +Pipelining /
// +Aggregation.
#include <cstdio>

#include "apps/fmm/app.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  bool paper = false;
  std::int64_t particles = 4096;
  std::int64_t terms = 16;
  std::int64_t procs = 16;
  std::int64_t strip = 300;
  dpa::bench::ObsOptions obs;
  dpa::bench::FaultOptions faults;
  dpa::Options options;
  options.flag("paper", &paper, "full 32,768-particle / 29-term run")
      .i64("particles", &particles, "particles (ignored with --paper)")
      .i64("terms", &terms, "expansion terms (ignored with --paper)")
      .i64("procs", &procs, "node count (paper: 16)")
      .i64("strip", &strip, "strip size (paper: 300)");
  obs.add_flags(options);
  faults.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  obs.init();
  const auto net = faults.applied(dpa::bench::t3d_params());
  faults.announce();

  using namespace dpa;
  using apps::fmm::FmmApp;
  using apps::fmm::FmmConfig;

  FmmConfig cfg;
  if (paper) {
    cfg = FmmConfig::paper();
  } else {
    cfg.nparticles = std::uint32_t(particles);
    cfg.terms = std::uint32_t(terms);
  }
  FmmApp app(cfg);
  const auto seq = app.run_sequential();
  std::printf(
      "=== Figure: FMM interaction-phase breakdown "
      "(%u particles, %u terms, %lld nodes, strip %lld) ===\n"
      "sequential (modeled): %.3f s\n\n",
      cfg.nparticles, cfg.terms, (long long)procs, (long long)strip,
      seq.seconds);

  struct Version {
    const char* name;
    rt::RuntimeConfig cfg;
  };
  const Version versions[] = {
      {"Base", rt::RuntimeConfig::dpa_base(std::uint32_t(strip))},
      {"+Pipelining", rt::RuntimeConfig::dpa_pipelined(std::uint32_t(strip))},
      {"+Aggregation", rt::RuntimeConfig::dpa(std::uint32_t(strip))},
  };
  Table table(
      {"version", "total(s)", "local(s)", "comm(s)", "idle(s)", "speedup"});
  for (const auto& v : versions) {
    const auto run = app.run(std::uint32_t(procs), net, v.cfg, obs.get());
    bench::print_breakdown_row(table, v.name, run.steps[0].phase,
                               seq.seconds);
  }
  table.print();
  std::printf(
      "\nexpected shape (paper): same ordering as Barnes-Hut; FMM's larger\n"
      "objects (29-term expansions) make aggregation's per-message savings\n"
      "smaller relative to bytes, but pipelining still dominates Base.\n");
  return obs.finish() ? 0 : 1;
}
