// Ablation: aggregation buffer size and MTU. em3d's 8-byte remote reads are
// the extreme fine-grained case: per-message overhead dominates, so the
// aggregation factor translates almost directly into phase time — until
// messages hit the MTU and segment.
#include <cstdio>
#include <vector>

#include "apps/em3d/em3d.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  std::int64_t procs = 16;
  std::int64_t e_per_node = 2048;
  dpa::bench::ObsOptions obs;
  dpa::bench::FaultOptions faults;
  dpa::bench::SweepOptions sweep;
  dpa::Options options;
  options.i64("procs", &procs, "node count")
      .i64("per-node", &e_per_node, "graph nodes per processor and side");
  obs.add_flags(options);
  faults.add_flags(options);
  sweep.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  obs.init();

  using namespace dpa;
  const auto base_net = faults.applied(bench::t3d_params());
  faults.announce();
  const std::size_t jobs = sweep.resolved(obs.attached_by());

  apps::em3d::Em3dConfig em;
  em.e_per_node = std::uint32_t(e_per_node);
  em.h_per_node = std::uint32_t(e_per_node);
  em.remote_prob = 0.4;
  apps::em3d::Em3dApp app(em, std::uint32_t(procs));

  std::printf("=== Ablation: aggregation buffer size (em3d, %lld nodes) ===\n\n",
              (long long)procs);
  const std::uint32_t caps[] = {1u, 4u, 16u, 64u, 256u};
  const auto cap_runs = bench::sweep_cells<apps::em3d::Em3dRun>(
      jobs, std::size(caps), [&](std::size_t i) {
        auto cfg = rt::RuntimeConfig::dpa(256);
        cfg.agg_max_refs = caps[i];
        return app.run(base_net, cfg, obs.get());
      });
  Table table({"agg max refs", "time(s)", "agg factor", "request msgs",
               "wire msgs", "bytes"});
  for (std::size_t i = 0; i < std::size(caps); ++i) {
    const auto& run = cap_runs[i];
    const auto& p = run.steps[0].phase;
    table.add_row({std::to_string(caps[i]),
                   Table::num(run.total_parallel_seconds(), 3),
                   Table::num(p.rt.aggregation_factor(), 1),
                   std::to_string(p.rt.request_msgs),
                   std::to_string(p.net.messages),
                   std::to_string(p.net.bytes)});
  }
  table.print();

  std::printf("\n=== Ablation: MTU (agg max 256) ===\n\n");
  const std::uint32_t mtus[] = {256u, 1024u, 4096u, 16384u};
  const auto mtu_runs = bench::sweep_cells<apps::em3d::Em3dRun>(
      jobs, std::size(mtus), [&](std::size_t i) {
        auto net = base_net;
        net.mtu_bytes = mtus[i];
        auto cfg = rt::RuntimeConfig::dpa(256);
        cfg.agg_max_refs = 256;
        return app.run(net, cfg, obs.get());
      });
  Table mtu_table({"mtu bytes", "time(s)", "wire msgs (fragments)"});
  for (std::size_t i = 0; i < std::size(mtus); ++i) {
    mtu_table.add_row(
        {std::to_string(mtus[i]),
         Table::num(mtu_runs[i].total_parallel_seconds(), 3),
         std::to_string(mtu_runs[i].steps[0].phase.net.messages)});
  }
  mtu_table.print();
  std::printf(
      "\nexpected shape: time falls steeply as the aggregation cap grows\n"
      "(per-message overhead amortized), then flattens; tiny MTUs re-inflate\n"
      "wire messages and give some of the win back.\n");
  return obs.finish() ? 0 : 1;
}
