// Ablation: aggregation buffer size and MTU. em3d's 8-byte remote reads are
// the extreme fine-grained case: per-message overhead dominates, so the
// aggregation factor translates almost directly into phase time — until
// messages hit the MTU and segment.
#include <cstdio>

#include "apps/em3d/em3d.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  std::int64_t procs = 16;
  std::int64_t e_per_node = 2048;
  dpa::bench::ObsOptions obs;
  dpa::bench::FaultOptions faults;
  dpa::Options options;
  options.i64("procs", &procs, "node count")
      .i64("per-node", &e_per_node, "graph nodes per processor and side");
  obs.add_flags(options);
  faults.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  obs.init();

  using namespace dpa;
  const auto base_net = faults.applied(bench::t3d_params());
  faults.announce();

  apps::em3d::Em3dConfig em;
  em.e_per_node = std::uint32_t(e_per_node);
  em.h_per_node = std::uint32_t(e_per_node);
  em.remote_prob = 0.4;
  apps::em3d::Em3dApp app(em, std::uint32_t(procs));

  std::printf("=== Ablation: aggregation buffer size (em3d, %lld nodes) ===\n\n",
              (long long)procs);
  Table table({"agg max refs", "time(s)", "agg factor", "request msgs",
               "wire msgs", "bytes"});
  for (const std::uint32_t cap : {1u, 4u, 16u, 64u, 256u}) {
    auto cfg = rt::RuntimeConfig::dpa(256);
    cfg.agg_max_refs = cap;
    const auto run = app.run(base_net, cfg, obs.get());
    const auto& p = run.steps[0].phase;
    table.add_row({std::to_string(cap),
                   Table::num(run.total_parallel_seconds(), 3),
                   Table::num(p.rt.aggregation_factor(), 1),
                   std::to_string(p.rt.request_msgs),
                   std::to_string(p.net.messages),
                   std::to_string(p.net.bytes)});
  }
  table.print();

  std::printf("\n=== Ablation: MTU (agg max 256) ===\n\n");
  Table mtu_table({"mtu bytes", "time(s)", "wire msgs (fragments)"});
  for (const std::uint32_t mtu : {256u, 1024u, 4096u, 16384u}) {
    auto net = base_net;
    net.mtu_bytes = mtu;
    auto cfg = rt::RuntimeConfig::dpa(256);
    cfg.agg_max_refs = 256;
    const auto run = app.run(net, cfg, obs.get());
    mtu_table.add_row({std::to_string(mtu),
                       Table::num(run.total_parallel_seconds(), 3),
                       std::to_string(run.steps[0].phase.net.messages)});
  }
  mtu_table.print();
  std::printf(
      "\nexpected shape: time falls steeply as the aggregation cap grows\n"
      "(per-message overhead amortized), then flattens; tiny MTUs re-inflate\n"
      "wire messages and give some of the win back.\n");
  return obs.finish() ? 0 : 1;
}
