// Reproduces the paper's execution-time table (Table 2 analogue):
// Barnes-Hut and FMM force-phase times under DPA(strip 50) vs the software
// caching baseline, across 1..64 (BH) / 2..64 (FMM) nodes.
//
// Default workload is scaled down so the harness runs in seconds; pass
// --paper for the full 16,384-body / 32,768-particle configuration.
// Absolute seconds come from the calibrated cost model; the claims being
// reproduced are the *shape*: caching edges out DPA at P=1 (nothing to
// hash, cheaper bookkeeping), DPA wins everywhere P>=2, and DPA's speedup
// exceeds 42x (BH) / 54x (FMM) on 64 nodes.
#include <cstdio>
#include <fstream>
#include <optional>

#include "apps/barnes/app.h"
#include "apps/fmm/app.h"
#include "common.h"
#include "support/json.h"
#include "support/options.h"

namespace dpa::bench {
namespace {

using apps::barnes::BarnesApp;
using apps::barnes::BarnesConfig;
using apps::fmm::FmmApp;
using apps::fmm::FmmConfig;

JsonWriter* g_json = nullptr;     // optional machine-readable output
obs::Session* g_obs = nullptr;    // optional tracing + metrics sink
sim::NetParams g_net = t3d_params();  // network (faulted when --faults=)
std::size_t g_jobs = 1;           // host threads for sweep cells
exec::BackendKind g_backend = exec::BackendKind::kSim;

// One (procs, engine) sweep cell. Cells run — possibly on a host thread
// pool — before any printing; rows are then emitted in index order, so the
// output is identical to a serial sweep.
struct Cell {
  std::uint32_t procs = 0;
  bool dpa = true;
};

rt::RuntimeConfig cell_config(const Cell& c) {
  return c.dpa ? rt::RuntimeConfig::dpa(50) : rt::RuntimeConfig::caching();
}

void run_barnes(const BarnesConfig& cfg, std::uint32_t max_procs) {
  BarnesApp app(cfg);
  std::printf("BARNES-HUT: %u bodies, %u steps, theta=%.2f\n", cfg.nbodies,
              cfg.nsteps, cfg.theta);
  const auto seq = app.run_sequential();
  double seq_seconds = 0;
  for (const auto& s : seq) seq_seconds += s.seconds;
  std::printf("sequential (modeled): %.2f s   [paper: %.2f s]\n\n",
              seq_seconds, PaperRef::bh_seq);

  std::vector<Cell> cells;
  for (int i = 0; i < 7; ++i) {
    const auto procs = std::uint32_t(PaperRef::bh_procs[i]);
    if (procs > max_procs) break;
    cells.push_back({procs, /*dpa=*/true});
    cells.push_back({procs, /*dpa=*/false});
  }
  const auto runs = sweep_cells<apps::barnes::BarnesRun>(
      g_jobs, cells.size(), [&](std::size_t i) {
        return app.run(cells[i].procs, g_net, cell_config(cells[i]), g_obs,
                       g_backend);
      });

  Table table({"P", "DPA(50)", "Caching", "paper DPA", "paper Caching",
               "DPA speedup"});
  auto json_rows = g_json ? std::optional(g_json->arr("barnes_hut"))
                          : std::nullopt;
  double dpa_p1 = 0;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const auto procs = cells[i].procs;
    const double dpa_s = runs[i].total_parallel_seconds();
    const double caching_s = runs[i + 1].total_parallel_seconds();
    if (procs == 1) dpa_p1 = dpa_s;
    table.add_row({std::to_string(procs), Table::num(dpa_s, 2),
                   Table::num(caching_s, 2),
                   Table::num(PaperRef::bh_dpa50[i / 2], 2),
                   Table::num(PaperRef::bh_caching[i / 2], 2),
                   Table::num(dpa_p1 > 0 ? dpa_p1 / dpa_s : 1.0, 1) + "x"});
    if (g_json) {
      auto row = g_json->obj();
      g_json->field("procs", std::uint64_t(procs))
          .field("dpa_s", dpa_s)
          .field("caching_s", caching_s)
          .field("paper_dpa_s", PaperRef::bh_dpa50[i / 2])
          .field("paper_caching_s", PaperRef::bh_caching[i / 2]);
    }
  }
  json_rows.reset();
  table.print();
  std::printf("\n");
}

void run_fmm(const FmmConfig& cfg, std::uint32_t max_procs) {
  FmmApp app(cfg);
  std::printf("FMM: %u particles, %u terms, %u step(s)\n", cfg.nparticles,
              cfg.terms, cfg.nsteps);
  const auto seq = app.run_sequential();
  std::printf("sequential (modeled): %.2f s   [paper: %.2f s]\n\n",
              seq.seconds, PaperRef::fmm_seq);

  std::vector<Cell> cells;
  for (int i = 0; i < 6; ++i) {
    const auto procs = std::uint32_t(PaperRef::fmm_procs[i]);
    if (procs > max_procs) break;
    cells.push_back({procs, /*dpa=*/true});
    cells.push_back({procs, /*dpa=*/false});
  }
  const auto runs = sweep_cells<apps::fmm::FmmRun>(
      g_jobs, cells.size(), [&](std::size_t i) {
        return app.run(cells[i].procs, g_net, cell_config(cells[i]), g_obs,
                       g_backend);
      });

  Table table({"P", "DPA(50)", "Caching", "paper DPA", "DPA speedup"});
  auto json_rows = g_json ? std::optional(g_json->arr("fmm"))
                          : std::nullopt;
  double first_dpa = 0;
  std::uint32_t first_procs = 0;
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const auto procs = cells[i].procs;
    const double dpa_s = runs[i].total_parallel_seconds();
    const double caching_s = runs[i + 1].total_parallel_seconds();
    if (first_dpa == 0) {
      first_dpa = dpa_s;
      first_procs = procs;
    }
    table.add_row(
        {std::to_string(procs), Table::num(dpa_s, 2),
         Table::num(caching_s, 2),
         maybe(PaperRef::fmm_dpa50[i / 2]),
         Table::num(first_dpa / dpa_s * double(first_procs), 1) + "x"});
    if (g_json) {
      auto row = g_json->obj();
      g_json->field("procs", std::uint64_t(procs))
          .field("dpa_s", dpa_s)
          .field("caching_s", caching_s);
    }
  }
  json_rows.reset();
  table.print();
  std::printf("(speedup column: relative to the %u-node DPA run, scaled)\n\n",
              first_procs);
}

}  // namespace
}  // namespace dpa::bench

int main(int argc, char** argv) {
  bool paper = false;
  std::string json_path;
  std::int64_t max_procs = 64;
  std::int64_t bodies = 4096;
  std::int64_t particles = 4096;
  std::int64_t terms = 16;
  std::int64_t steps = 1;
  dpa::bench::ObsOptions obs;
  dpa::bench::FaultOptions faults;
  dpa::bench::SweepOptions sweep;
  dpa::bench::BackendOptions backend;
  dpa::Options options;
  options.flag("paper", &paper,
               "run the full paper-scale workloads (minutes of host time)")
      .i64("max-procs", &max_procs, "largest simulated node count")
      .i64("bodies", &bodies, "Barnes-Hut bodies (ignored with --paper)")
      .i64("particles", &particles, "FMM particles (ignored with --paper)")
      .i64("terms", &terms, "FMM expansion terms (ignored with --paper)")
      .i64("steps", &steps, "Barnes-Hut steps (ignored with --paper)")
      .str("json", &json_path, "also write results to this JSON file");
  obs.add_flags(options);
  faults.add_flags(options);
  sweep.add_flags(options);
  backend.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  if (!backend.validate(faults)) return 1;
  backend.install();
  faults.apply(&dpa::bench::g_net);
  faults.announce();
  backend.announce();
  dpa::bench::g_backend = backend.kind();
  // With --json the metrics block is merged into that file, so a session is
  // attached even without --trace-out/--metrics-out.
  obs.init(!json_path.empty() ? "--json" : nullptr);
  dpa::bench::g_obs = obs.get();
  dpa::bench::g_jobs = backend.clamp_jobs(sweep.resolved(obs.attached_by()));

  dpa::apps::barnes::BarnesConfig bh_cfg;
  dpa::apps::fmm::FmmConfig fmm_cfg;
  if (paper) {
    bh_cfg = dpa::apps::barnes::BarnesConfig::paper();
    fmm_cfg = dpa::apps::fmm::FmmConfig::paper();
  } else {
    bh_cfg.nbodies = std::uint32_t(bodies);
    bh_cfg.nsteps = std::uint32_t(steps);
    fmm_cfg.nparticles = std::uint32_t(particles);
    fmm_cfg.terms = std::uint32_t(terms);
  }

  std::printf("=== Table 2: execution times, DPA(50) vs software caching ===\n\n");
  dpa::JsonWriter json;
  std::optional<dpa::JsonWriter::Scope> root;
  if (!json_path.empty()) {
    dpa::bench::g_json = &json;
    root.emplace(json.obj());
  }
  dpa::bench::run_barnes(bh_cfg, std::uint32_t(max_procs));
  dpa::bench::run_fmm(fmm_cfg, std::uint32_t(max_procs));
  if (!json_path.empty()) {
    if (dpa::bench::g_obs != nullptr) {
      auto metrics = json.obj("metrics");
      dpa::bench::g_obs->metrics.append_to(json);
    }
    root.reset();
    std::ofstream out(json_path);
    out << json.str() << "\n";
    std::printf("json written to %s\n", json_path.c_str());
  }
  return obs.finish() ? 0 : 1;
}
