// Strip-size sensitivity (the paper's k-bounded-loop knob: DPA(50) vs
// DPA(300) appear throughout its evaluation). Sweeps the strip size and
// reports phase time, the aggregation factor it enables, and the resource
// ceilings it bounds: max outstanding threads, max live entries in M, and
// the thread-state memory high-water estimate.
#include <cstdio>
#include <vector>

#include "apps/barnes/app.h"
#include "apps/fmm/app.h"
#include "common.h"
#include "support/options.h"

namespace {

constexpr std::uint32_t kStrips[] = {10u, 25u, 50u, 100u, 300u, 1000u};

template <class App, class Run, class StepOf>
void sweep(const char* name, const App& app, std::uint32_t procs,
           const dpa::sim::NetParams& net, double seq_seconds,
           std::size_t jobs, dpa::exec::BackendKind backend,
           dpa::obs::Session* obs, StepOf step_of) {
  std::printf("--- %s on %u nodes ---\n", name, procs);
  const std::size_t n = std::size(kStrips);
  const auto runs =
      dpa::bench::sweep_cells<Run>(jobs, n, [&](std::size_t i) {
        return app.run(procs, net, dpa::rt::RuntimeConfig::dpa(kStrips[i]),
                       obs, backend);
      });
  dpa::Table table({"strip", "time(s)", "speedup", "agg factor",
                    "max outstanding", "max |M|", "thread mem (KB)"});
  for (std::size_t i = 0; i < n; ++i) {
    const dpa::rt::PhaseResult& phase = step_of(runs[i]);
    const double mem_kb =
        double(phase.rt.max_outstanding_threads) * 64.0 / 1024.0;
    table.add_row({std::to_string(kStrips[i]),
                   dpa::Table::num(phase.seconds(), 3),
                   dpa::Table::num(seq_seconds / phase.seconds(), 1) + "x",
                   dpa::Table::num(phase.rt.aggregation_factor(), 1),
                   std::to_string(phase.rt.max_outstanding_threads),
                   std::to_string(phase.rt.max_m_entries),
                   dpa::Table::num(mem_kb, 1)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t bodies = 4096;
  std::int64_t particles = 4096;
  std::int64_t terms = 16;
  std::int64_t procs = 16;
  dpa::bench::FaultOptions faults;
  dpa::bench::SweepOptions sweep_opts;
  dpa::bench::BackendOptions backend;
  dpa::bench::ObsOptions obs;
  dpa::Options options;
  options.i64("bodies", &bodies, "Barnes-Hut bodies")
      .i64("particles", &particles, "FMM particles")
      .i64("terms", &terms, "FMM expansion terms")
      .i64("procs", &procs, "node count");
  obs.add_flags(options);
  faults.add_flags(options);
  sweep_opts.add_flags(options);
  backend.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  if (!backend.validate(faults)) return 1;
  backend.install();
  obs.init();

  using namespace dpa;
  const auto net = faults.applied(bench::t3d_params());
  faults.announce();
  backend.announce();
  const std::size_t jobs =
      backend.clamp_jobs(sweep_opts.resolved(obs.attached_by()));

  std::printf("=== Figure: strip-size sensitivity ===\n\n");

  apps::barnes::BarnesConfig bh;
  bh.nbodies = std::uint32_t(bodies);
  apps::barnes::BarnesApp bh_app(bh);
  const double bh_seq = bh_app.run_sequential()[0].seconds;
  sweep<apps::barnes::BarnesApp, apps::barnes::BarnesRun>(
      "Barnes-Hut", bh_app, std::uint32_t(procs), net, bh_seq, jobs,
      backend.kind(), obs.get(),
      [](const apps::barnes::BarnesRun& r) -> const rt::PhaseResult& {
        return r.steps[0].phase;
      });

  apps::fmm::FmmConfig fm;
  fm.nparticles = std::uint32_t(particles);
  fm.terms = std::uint32_t(terms);
  apps::fmm::FmmApp fmm_app(fm);
  const double fmm_seq = fmm_app.run_sequential().seconds;
  sweep<apps::fmm::FmmApp, apps::fmm::FmmRun>(
      "FMM", fmm_app, std::uint32_t(procs), net, fmm_seq, jobs,
      backend.kind(), obs.get(),
      [](const apps::fmm::FmmRun& r) -> const rt::PhaseResult& {
        return r.steps[0].phase;
      });

  std::printf(
      "expected shape (paper): small strips bound memory tightly but leave\n"
      "little to aggregate or overlap; large strips improve both at the\n"
      "cost of outstanding-thread memory, with diminishing returns.\n");
  if (!obs.finish()) return 1;
  return 0;
}
