// Reproduces the thread-statistics table (Table 1 analogue): the paper
// reports, per application, the number of STATIC threads the compiler
// extracts, and the runtime's MAX number of outstanding threads / memory.
//
// The static half runs our partitioner on IR models of the three kernels
// (tree walk, FMM-style multi-dependency update, em3d update); the dynamic
// half runs the real applications and reads the runtime gauges.
#include <cstdio>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "apps/fmm/app.h"
#include "common.h"
#include "compiler/interp.h"
#include "compiler/partition.h"
#include "support/options.h"

namespace {

using namespace dpa;
using compiler::ClassDef;
using E = compiler::Expr;
using S = compiler::Stmt;

// Barnes-Hut force walk, as the compiler sees it.
compiler::Module barnes_ir() {
  compiler::Module m;
  m.classes.push_back(ClassDef{"Cell",
                               {"mass", "comx", "comy", "comz", "size",
                                "is_leaf"},
                               {{"c0", "Cell"},
                                {"c1", "Cell"},
                                {"c2", "Cell"},
                                {"c3", "Cell"},
                                {"c4", "Cell"},
                                {"c5", "Cell"},
                                {"c6", "Cell"},
                                {"c7", "Cell"}}});
  compiler::Function walk;
  walk.name = "walk";
  walk.param = "c";
  walk.param_class = "Cell";
  walk.body = {
      S::read_scalar("m", "c", "mass"),
      S::read_scalar("leaf", "c", "is_leaf"),
      S::read_scalar("sz", "c", "size"),
      S::let("far", E::less(E::v("sz"), E::c(1.0))),  // opening criterion
      S::if_(E::v("leaf"),
             {S::accum("force", E::v("m")), S::charge(E::c(3600))},
             {S::if_(E::v("far"),
                     {S::accum("force", E::v("m")), S::charge(E::c(3600))},
                     {S::charge(E::c(350)),
                      S::spawn_children("walk", "c")})}),
  };
  m.functions.push_back(std::move(walk));
  return m;
}

// FMM interaction: visit a target cell, read its list (modeled as two
// source pointers), translate each source expansion.
compiler::Module fmm_ir() {
  compiler::Module m;
  m.classes.push_back(ClassDef{
      "FCell", {"a0", "a1", "a2"}, {{"s0", "FCell"}, {"s1", "FCell"}}});
  compiler::Function inter;
  inter.name = "interact";
  inter.param = "t";
  inter.param_class = "FCell";
  inter.body = {
      S::read_ptr("p0", "t", "s0"),
      S::read_ptr("p1", "t", "s1"),
      S::read_scalar("m0", "p0", "a0"),
      S::accum("local", E::v("m0")),
      S::charge(E::c(10000)),
      S::read_scalar("m1", "p1", "a0"),
      S::accum("local", E::v("m1")),
      S::charge(E::c(10000)),
  };
  m.functions.push_back(std::move(inter));
  return m;
}

// em3d update: four dependencies, each with a coefficient.
compiler::Module em3d_ir() {
  compiler::Module m;
  m.classes.push_back(ClassDef{"ENode",
                               {"c0", "c1", "c2", "c3"},
                               {{"d0", "ENode"},
                                {"d1", "ENode"},
                                {"d2", "ENode"},
                                {"d3", "ENode"}}});
  compiler::Function f;
  f.name = "update";
  f.param = "e";
  f.param_class = "ENode";
  std::vector<compiler::StmtPtr> body;
  for (int d = 0; d < 4; ++d) {
    const std::string i = std::to_string(d);
    body.push_back(S::read_scalar("c" + i, "e", "c" + i));
    body.push_back(S::read_ptr("p" + i, "e", "d" + i));
  }
  for (int d = 0; d < 4; ++d) {
    const std::string i = std::to_string(d);
    body.push_back(S::read_scalar("v" + i, "p" + i, "c0"));
    body.push_back(
        S::accum("acc", E::mul(E::v("c" + i), E::v("v" + i))));
    body.push_back(S::charge(E::c(120)));
  }
  f.body = std::move(body);
  m.functions.push_back(std::move(f));
  return m;
}

void print_static(const char* name, const compiler::Module& module) {
  const auto program = compiler::partition(module);
  const auto stats = program.stats();
  std::printf("%-12s static threads %2zu   hoisted reads %2zu (max %zu per "
              "thread)   spawn sites %zu\n",
              name, stats.num_templates, stats.total_hoisted_reads,
              stats.max_reads_per_thread, stats.total_spawn_sites);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t bodies = 4096;
  std::int64_t particles = 4096;
  std::int64_t procs = 16;
  dpa::bench::FaultOptions faults;
  dpa::Options options;
  options.i64("bodies", &bodies, "Barnes-Hut bodies")
      .i64("particles", &particles, "FMM particles")
      .i64("procs", &procs, "node count for the dynamic half");
  faults.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  const auto net = faults.applied(dpa::bench::t3d_params());
  faults.announce();

  std::printf("=== Table 1: thread statistics ===\n\n");
  std::printf("-- static (compiler partitioner on kernel IR) --\n");
  print_static("barnes-hut", barnes_ir());
  print_static("fmm", fmm_ir());
  print_static("em3d", em3d_ir());

  std::printf("\n-- dynamic (runtime gauges, strip 50 vs 300, %lld nodes) --\n",
              (long long)procs);
  dpa::Table table({"app", "strip", "max outstanding threads", "max |M|",
                    "thread mem (KB)"});

  apps::barnes::BarnesConfig bh;
  bh.nbodies = std::uint32_t(bodies);
  apps::barnes::BarnesApp bh_app(bh);
  apps::fmm::FmmConfig fm;
  fm.nparticles = std::uint32_t(particles);
  apps::fmm::FmmApp fmm_app(fm);

  for (const std::uint32_t strip : {50u, 300u}) {
    const auto bh_run = bh_app.run(std::uint32_t(procs), net,
                                   dpa::rt::RuntimeConfig::dpa(strip));
    const auto& bp = bh_run.steps[0].phase.rt;
    table.add_row({"barnes-hut", std::to_string(strip),
                   std::to_string(bp.max_outstanding_threads),
                   std::to_string(bp.max_m_entries),
                   dpa::Table::num(
                       double(bp.max_outstanding_threads) * 64.0 / 1024, 1)});
    const auto fmm_run = fmm_app.run(std::uint32_t(procs), net,
                                     dpa::rt::RuntimeConfig::dpa(strip));
    const auto& fp = fmm_run.steps[0].phase.rt;
    table.add_row({"fmm", std::to_string(strip),
                   std::to_string(fp.max_outstanding_threads),
                   std::to_string(fp.max_m_entries),
                   dpa::Table::num(
                       double(fp.max_outstanding_threads) * 64.0 / 1024, 1)});
  }
  table.print();
  return 0;
}
