// Ablation: network-parameter sensitivity. Scales the T3D latency/overhead
// terms to see where DPA's advantage over caching comes from and where the
// schemes cross over; the zero-cost network isolates DPA as a pure
// tiling/scheduling optimization (the single-address-space "cache
// optimization" direction the paper's Section 6 sketches).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/barnes/app.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  std::int64_t bodies = 4096;
  std::int64_t procs = 16;
  dpa::bench::FaultOptions faults;
  dpa::bench::SweepOptions sweep;
  dpa::Options options;
  options.i64("bodies", &bodies, "Barnes-Hut bodies")
      .i64("procs", &procs, "node count");
  faults.add_flags(options);
  sweep.add_flags(options);
  if (!options.parse(argc, argv)) return 0;

  using namespace dpa;
  faults.announce();
  const std::size_t jobs = sweep.resolved(/*obs_flag=*/nullptr);

  apps::barnes::BarnesConfig bh;
  bh.nbodies = std::uint32_t(bodies);
  apps::barnes::BarnesApp app(bh);
  const double seq = app.run_sequential()[0].seconds;

  std::printf(
      "=== Ablation: network sensitivity (Barnes-Hut, %lld nodes) ===\n"
      "sequential (modeled): %.3f s\n\n",
      (long long)procs, seq);

  std::vector<std::string> labels;
  std::vector<sim::NetParams> nets;
  labels.push_back("zero-cost (pure tiling)");
  nets.push_back(faults.applied(sim::NetParams::zero()));
  for (const double scale : {0.25, 1.0, 4.0, 16.0}) {
    auto net = faults.applied(bench::t3d_params());
    net.latency = sim::Time(double(net.latency) * scale);
    net.send_overhead = sim::Time(double(net.send_overhead) * scale);
    net.recv_overhead = sim::Time(double(net.recv_overhead) * scale);
    char label[64];
    std::snprintf(label, sizeof(label), "T3D x %.2f", scale);
    labels.push_back(label);
    nets.push_back(net);
  }

  // Three engine cells per network row, flattened so all rows' runs share
  // one host-thread pool.
  const auto configs = [] {
    std::vector<rt::RuntimeConfig> c;
    c.push_back(rt::RuntimeConfig::dpa(50));
    c.push_back(rt::RuntimeConfig::caching());
    c.push_back(rt::RuntimeConfig::prefetching(8));
    return c;
  }();
  const auto runs = bench::sweep_cells<apps::barnes::BarnesRun>(
      jobs, nets.size() * configs.size(), [&](std::size_t i) {
        return app.run(std::uint32_t(procs), nets[i / configs.size()],
                       configs[i % configs.size()]);
      });

  Table table({"network", "DPA(50) (s)", "Caching (s)", "Prefetch (s)",
               "DPA/Caching"});
  for (std::size_t r = 0; r < nets.size(); ++r) {
    const double dpa = runs[r * 3].total_parallel_seconds();
    const double caching = runs[r * 3 + 1].total_parallel_seconds();
    const double prefetch = runs[r * 3 + 2].total_parallel_seconds();
    table.add_row({labels[r], Table::num(dpa, 3), Table::num(caching, 3),
                   Table::num(prefetch, 3), Table::num(dpa / caching, 2)});
  }
  table.print();
  std::printf(
      "\nexpected shape: DPA's edge widens as latency/overhead scale up\n"
      "(more to hide, more to amortize). Even on the zero-cost network DPA\n"
      "keeps an edge at P>1: the baselines' *synchronous* fetches still\n"
      "wait for the home processor to service them (occupancy, not wire\n"
      "time) and pay a hash probe per access, while DPA overlaps service\n"
      "time like any other latency — the pure-tiling single-address-space\n"
      "mode the paper's Section 6 sketches.\n");
  return 0;
}
