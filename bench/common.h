// Shared pieces of the experiment harnesses: the modeled Cray T3D network
// parameters, breakdown-row formatting, and the paper's reference numbers
// (from the PPoPP'97 text) so every binary prints paper-vs-measured.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exec/backend.h"
#include "exec/native_backend.h"
#include "exec/proc_backend.h"
#include "obs/chrome_trace.h"
#include "obs/session.h"
#include "runtime/phase.h"
#include "sim/network.h"
#include "support/options.h"
#include "support/parallel.h"
#include "support/table.h"

namespace dpa::bench {

// --backend= plumbing: run a harness's cells on the discrete-event
// simulator (the default; modeled seconds), on the native shared-memory
// backend (an M:N pool of worker threads multiplexing the simulated nodes;
// real wall-clock seconds), or on the multi-process backend ('proc': one
// worker process per group of nodes, cross-process messages over
// socketpairs, real wall-clock seconds). Native and proc runs are
// incompatible with fault injection (their fabrics cannot lose messages —
// proc's reliability layer lives inside the transport) and force --jobs=1
// (a cell already fans out across workers, and co-scheduling cells would
// corrupt each other's timings).
struct BackendOptions {
  std::string name = "sim";
  std::int64_t workers = 0;      // native pool size; 0 = min(cores, nodes)
  std::int64_t procs = 2;        // proc backend: worker process count
  std::int64_t watchdog_ms = 0;  // 0 = no watchdog
  std::string watchdog_dump;     // flight-recorder JSON path ("" = stderr)

  void add_flags(Options& options) {
    options
        .str("backend", &name,
             "execution substrate: 'sim' (modeled LogGP network), "
             "'native' (worker pool multiplexing the nodes, wall-clock "
             "timings), or 'proc' (worker processes over socketpairs, "
             "wall-clock timings)")
        .i64("workers", &workers,
             "native/proc only: host threads in the worker pool "
             "(0 = one per host core, clamped to the node count)")
        .i64("procs", &procs,
             "proc only: worker processes the nodes are partitioned "
             "across (clamped to the node count)")
        .i64("watchdog-ms", &watchdog_ms,
             "native/proc only: abort (with a flight-recorder dump) if a "
             "phase outlives this many wall milliseconds or makes no "
             "progress (0 = no watchdog)")
        .str("watchdog-dump", &watchdog_dump,
             "where the watchdog writes its flight-recorder JSON "
             "(default: stderr summary only)");
  }

  bool native() const { return name == "native"; }
  bool proc() const { return name == "proc"; }
  exec::BackendKind kind() const {
    if (proc()) return exec::BackendKind::kProc;
    return native() ? exec::BackendKind::kNative : exec::BackendKind::kSim;
  }

  // Call after parse(); returns false (after printing why) on a bad combo.
  bool validate(const struct FaultOptions& faults) const;

  std::size_t clamp_jobs(std::size_t jobs) const {
    if ((native() || proc()) && jobs != 1) {
      std::fprintf(stderr,
                   "warning: --jobs=%zu ignored: --backend=%s runs cells "
                   "serially (each already fans out across workers)\n",
                   jobs, name.c_str());
      return 1;
    }
    return jobs;
  }

  // --watchdog-ms=N as an exec::WatchdogConfig: the phase deadline is N
  // wall milliseconds, and independently eight consecutive no-progress
  // sweeps (spaced so eight fit inside the deadline, floor 1 ms) fire the
  // stuck-counters trigger well before a deadlocked phase burns the whole
  // budget. Pure mapping, no side effects — unit-testable.
  exec::WatchdogConfig watchdog_config() const {
    exec::WatchdogConfig cfg;
    if (watchdog_ms <= 0) return cfg;
    cfg.phase_deadline = exec::Time(watchdog_ms) * 1'000'000;
    cfg.stuck_scans = 8;
    cfg.scan_interval =
        std::max<exec::Time>(cfg.phase_deadline / 8, 1'000'000);
    cfg.dump_path = watchdog_dump;
    cfg.fatal = true;
    return cfg;
  }

  // Installs the native execution policy process-wide — worker-pool size
  // and watchdog config. Harnesses build their Clusters deep inside app
  // runners, so the policy is set once here and picked up by every
  // NativeBackend constructed afterwards.
  void install() const {
    if (workers != 0) {
      if (!native() && !proc()) {
        std::fprintf(stderr,
                     "warning: --workers=%lld ignored: the worker pool is a "
                     "native/proc-backend knob (--backend=sim is "
                     "single-threaded by construction)\n",
                     (long long)workers);
      } else if (workers < 0) {
        std::fprintf(stderr,
                     "warning: --workers=%lld ignored: want a positive pool "
                     "size (or 0 = one worker per host core)\n",
                     (long long)workers);
      } else {
        // On proc this sizes each worker process's *inner* pool.
        exec::NativeBackend::Tuning tuning =
            exec::NativeBackend::default_tuning();
        tuning.workers = std::uint32_t(workers);
        exec::NativeBackend::set_default_tuning(tuning);
      }
    }
    if (proc()) {
      exec::ProcBackend::Config cfg = exec::ProcBackend::default_config();
      cfg.procs = procs > 0 ? std::uint32_t(procs) : 1;
      if (watchdog_ms > 0) cfg.watchdog = watchdog_config();
      exec::ProcBackend::set_default_config(cfg);
      return;
    }
    if (watchdog_ms <= 0) return;
    if (!native()) {
      std::fprintf(stderr,
                   "warning: --watchdog-ms=%lld ignored: the watchdog "
                   "guards native/proc phases (--backend=sim is "
                   "deterministic and cannot stall)\n",
                   (long long)watchdog_ms);
      return;
    }
    exec::NativeBackend::set_default_watchdog(watchdog_config());
  }

  void announce() const {
    if (native())
      std::printf(
          "backend: native (M:N worker pool, wall-clock; timings are host "
          "seconds, not modeled T3D seconds)\n\n");
    if (proc())
      std::printf(
          "backend: proc (%lld worker processes over socketpairs, "
          "wall-clock; timings are host seconds, not modeled T3D "
          "seconds)\n\n",
          (long long)(procs > 0 ? procs : 1));
  }
};

// --jobs= plumbing for the sweep harnesses. A sweep's cells (one simulated
// run each) are independent: each builds its own Cluster, so they can run on
// a pool of host threads. Every cell is itself single-threaded and
// deterministic, and results are collected into per-cell slots and printed
// in index order afterwards — the output is byte-identical to --jobs=1.
//
// An attached obs::Session is shared mutable state (one metrics registry /
// trace ring across runs), so observability-enabled invocations fall back
// to serial; determinism_test exercises the parallel path with per-cell
// sessions instead.
struct SweepOptions {
  std::int64_t jobs = 1;  // 0 = one per host hardware thread

  void add_flags(Options& options) {
    options.i64("jobs", &jobs,
                "host threads for independent sweep cells (0 = nproc, 1 = "
                "serial; results are bit-identical either way)");
  }

  // Number of worker threads to use for a sweep. `obs_flag` is the flag
  // that attached an observability session (nullptr when none): a session
  // forces serial cells, and the warning names the flag responsible so the
  // override is never silent.
  std::size_t resolved(const char* obs_flag) const {
    if (obs_flag != nullptr) {
      if (jobs != 1)
        std::fprintf(stderr,
                     "warning: --jobs=%lld ignored: %s attached an "
                     "observability session (one registry/ring across "
                     "cells), so cells run serially\n",
                     (long long)jobs, obs_flag);
      return 1;
    }
    if (jobs <= 0) return host_concurrency();
    return std::size_t(jobs);
  }
};

// Runs compute(i) for every cell on `jobs` host threads and returns the
// results in index order. `compute` must only touch cell-local state.
template <class R, class Fn>
std::vector<R> sweep_cells(std::size_t jobs, std::size_t count, Fn&& compute) {
  std::vector<R> results(count);
  parallel_for_cells(jobs, count,
                     [&](std::size_t i) { results[i] = compute(i); });
  return results;
}

// Observability plumbing shared by the harnesses: --trace-out= and
// --metrics-out= flags plus the obs::Session the apps report into. The
// session is only allocated when some output was requested, so plain timing
// runs keep the instrumented paths on their null-pointer fast path.
struct ObsOptions {
  std::string trace_out;    // Chrome/Perfetto trace-event JSON
  std::string metrics_out;  // metrics snapshot JSON
  std::unique_ptr<obs::Session> session;
  const char* attached_by_ = nullptr;

  void add_flags(Options& options) {
    options
        .str("trace-out", &trace_out,
             "write a Chrome trace-event JSON (load in Perfetto) here")
        .str("metrics-out", &metrics_out,
             "write a metrics snapshot JSON here");
  }

  // Call once after parse(). `force_flag` names a harness flag (e.g.
  // "--json") that needs a session even without --trace-out/--metrics-out,
  // so downstream overrides can report which flag attached it.
  void init(const char* force_flag = nullptr) {
    if (!trace_out.empty())
      attached_by_ = "--trace-out";
    else if (!metrics_out.empty())
      attached_by_ = "--metrics-out";
    else
      attached_by_ = force_flag;
    if (attached_by_ != nullptr) session = std::make_unique<obs::Session>();
  }

  obs::Session* get() const { return session.get(); }

  // The flag responsible for the attached session, nullptr when none.
  const char* attached_by() const { return attached_by_; }

  // Writes the requested files; returns false if any write failed.
  bool finish() const {
    bool ok = true;
    if (!trace_out.empty() && session != nullptr) {
      if (!obs::kTraceEnabled)
        std::fprintf(stderr,
                     "warning: compiled with DPA_TRACE=OFF, %s will contain "
                     "no events\n",
                     trace_out.c_str());
      const obs::ShardedTraceSink* shards = session->shards.get();
      const std::uint64_t dropped =
          session->tracer.dropped() +
          (shards != nullptr ? shards->dropped_total() : 0);
      const std::uint64_t recorded =
          session->tracer.recorded() +
          (shards != nullptr ? shards->recorded_total() : 0);
      if (dropped > 0)
        std::fprintf(stderr,
                     "warning: trace ring(s) overflowed, oldest %llu of %llu "
                     "events dropped (per-worker counts are in the trace "
                     "header's dropped_by_worker)\n",
                     (unsigned long long)dropped, (unsigned long long)recorded);
      if (obs::write_chrome_trace(session->tracer, trace_out, shards)) {
        std::printf("trace written to %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
        ok = false;
      }
    }
    if (!metrics_out.empty() && session != nullptr) {
      std::ofstream out(metrics_out);
      out << session->metrics.to_json() << "\n";
      if (out.good()) {
        std::printf("metrics written to %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_out.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

// Chaos plumbing shared by the harnesses: --faults= / --fault-seed= flags
// plus the apply() call that installs the parsed FaultPlan into the network
// parameters a run uses. With no --faults the plan stays inactive and the
// fault hooks never allocate an injector, so timings are unchanged.
struct FaultOptions {
  std::string spec;
  std::int64_t seed = -1;  // -1 = keep the plan's default / spec's seed=

  void add_flags(Options& options) {
    options
        .str("faults", &spec,
             "run under an unreliable fabric; spec: 'chaos' or "
             "drop=P,dup=P,reorder=P[:ns],delay=P[:ns],pause=P[:ns],jitter "
             "(see sim/fault.h)")
        .i64("fault-seed", &seed, "seed for the fault schedule RNG");
  }

  bool active() const { return !spec.empty(); }

  // Call on every NetParams the harness builds, after parse().
  void apply(sim::NetParams* params) const {
    if (spec.empty()) return;
    params->faults = sim::FaultPlan::parse(spec);
    if (seed >= 0) params->faults.seed = std::uint64_t(seed);
  }

  // Convenience: an already-faulted copy of `params`.
  sim::NetParams applied(sim::NetParams params) const {
    apply(&params);
    return params;
  }

  void announce() const {
    if (spec.empty()) return;
    sim::NetParams p;
    apply(&p);
    std::printf("fault injection: %s (retry protocol engaged)\n\n",
                p.faults.describe().c_str());
  }
};

inline bool BackendOptions::validate(const FaultOptions& faults) const {
  if (name != "sim" && name != "native" && name != "proc") {
    std::fprintf(stderr,
                 "error: unknown --backend=%s (want sim|native|proc)\n",
                 name.c_str());
    return false;
  }
  if ((native() || proc()) && faults.active()) {
    std::fprintf(stderr,
                 "error: --backend=%s cannot run under --faults= (its "
                 "fabric is lossless; proc retransmission is transport-"
                 "internal, not a modeled fault)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// Cray T3D as seen through Illinois Fast Messages: a few microseconds of
// software overhead per message, a few microseconds of latency, ~30 MB/s
// deliverable bandwidth (FM-on-T3D regime, Karamcheti & Chien 1995).
inline sim::NetParams t3d_params() {
  sim::NetParams p;
  p.send_overhead = 2200;
  p.recv_overhead = 2600;
  p.latency = 2800;
  p.ns_per_byte = 33.0;
  p.per_msg_wire = 300;
  p.nic_serialize = true;
  p.mtu_bytes = 4096;
  return p;
}

// Paper reference numbers (Table of execution times, PPoPP'97).
struct PaperRef {
  // Barnes-Hut 16,384 bodies, 4 steps, seconds.
  static constexpr double bh_seq = 97.84;
  static constexpr double bh_dpa50[7] = {118.02, 61.23, 33.05, 17.15,
                                         8.59,   4.48,  2.63};
  static constexpr double bh_caching[7] = {115.15, 65.77, 38.02, 20.21,
                                           10.46,  5.41,  2.90};
  static constexpr int bh_procs[7] = {1, 2, 4, 8, 16, 32, 64};

  // FMM 32,768 particles, 29 terms, 1 step, seconds. The paper's fragments
  // preserve the first entries of the DPA(50) row and the sequential time;
  // the rest of the row is reconstructed from the quoted 54x speedup on 64
  // nodes (see EXPERIMENTS.md).
  static constexpr double fmm_seq = 14.46;
  static constexpr double fmm_dpa50[6] = {7.39, 3.80, 1.91, -1, -1, 0.27};
  static constexpr int fmm_procs[6] = {2, 4, 8, 16, 32, 64};
};

inline std::string maybe(double v, int precision = 2) {
  return v < 0 ? std::string("n/a") : Table::num(v, precision);
}

// One stacked bar of the breakdown figures.
inline void print_breakdown_row(Table& table, const std::string& label,
                                const rt::PhaseResult& result,
                                double seq_seconds) {
  table.add_row({label, Table::num(result.seconds(), 3),
                 Table::num(result.mean_local_s(), 3),
                 Table::num(result.mean_comm_s(), 3),
                 Table::num(result.mean_idle_s(), 3),
                 Table::num(seq_seconds / result.seconds(), 1) + "x"});
}

}  // namespace dpa::bench
