// Ablation: scheduling templates (the paper's Figure-14 choice). The
// create-all-then-run template exposes the whole strip's requests before
// executing (maximal aggregation); the interleaved template prefers running
// ready tiles and creates new threads only when idle (minimal outstanding
// state). This bench quantifies that trade on Barnes-Hut and em3d.
#include <cstdio>

#include "apps/barnes/app.h"
#include "apps/em3d/em3d.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  std::int64_t bodies = 4096;
  std::int64_t procs = 16;
  std::int64_t strip = 100;
  dpa::bench::FaultOptions faults;
  dpa::bench::SweepOptions sweep;
  dpa::Options options;
  options.i64("bodies", &bodies, "Barnes-Hut bodies")
      .i64("procs", &procs, "node count")
      .i64("strip", &strip, "strip size");
  faults.add_flags(options);
  sweep.add_flags(options);
  if (!options.parse(argc, argv)) return 0;

  using namespace dpa;
  const auto net = faults.applied(bench::t3d_params());
  faults.announce();
  const std::size_t jobs = sweep.resolved(/*obs_flag=*/nullptr);

  std::printf("=== Ablation: scheduling templates (strip %lld, %lld nodes) ===\n\n",
              (long long)strip, (long long)procs);
  Table table({"app", "template", "time(s)", "agg factor", "max outstanding",
               "request msgs"});

  auto cfg_for = [&](rt::SchedTemplate t) {
    auto cfg = rt::RuntimeConfig::dpa(std::uint32_t(strip));
    cfg.sched_template = t;
    return cfg;
  };

  apps::barnes::BarnesConfig bh;
  bh.nbodies = std::uint32_t(bodies);
  apps::barnes::BarnesApp bh_app(bh);
  apps::em3d::Em3dConfig em;
  em.e_per_node = 1024;
  em.h_per_node = 1024;
  em.remote_prob = 0.3;
  apps::em3d::Em3dApp em_app(em, std::uint32_t(procs));

  const rt::SchedTemplate templates[] = {rt::SchedTemplate::kCreateAllThenRun,
                                         rt::SchedTemplate::kInterleaved};
  // Four independent cells (2 templates x 2 apps), swept on a host pool.
  const auto bh_runs = bench::sweep_cells<apps::barnes::BarnesRun>(
      jobs, std::size(templates), [&](std::size_t i) {
        return bh_app.run(std::uint32_t(procs), net, cfg_for(templates[i]));
      });
  const auto em_runs = bench::sweep_cells<apps::em3d::Em3dRun>(
      jobs, std::size(templates), [&](std::size_t i) {
        return em_app.run(net, cfg_for(templates[i]));
      });

  for (std::size_t i = 0; i < std::size(templates); ++i) {
    const auto t = templates[i];
    const auto& bp = bh_runs[i].steps[0].phase;
    table.add_row({"barnes-hut", rt::to_string(t),
                   Table::num(bh_runs[i].total_parallel_seconds(), 3),
                   Table::num(bp.rt.aggregation_factor(), 1),
                   std::to_string(bp.rt.max_outstanding_threads),
                   std::to_string(bp.rt.request_msgs)});
    const auto& ep = em_runs[i].steps[0].phase;
    table.add_row({"em3d", rt::to_string(t),
                   Table::num(em_runs[i].total_parallel_seconds(), 3),
                   Table::num(ep.rt.aggregation_factor(), 1),
                   std::to_string(ep.rt.max_outstanding_threads),
                   std::to_string(ep.rt.request_msgs)});
  }
  table.print();
  std::printf(
      "\nexpected shape: the templates trade batching against latency.\n"
      "create-all issues each strip's requests as soon as the strip is\n"
      "created (earlier transfers, smaller batches); interleaved keeps\n"
      "running ready tiles and flushes only when idle (bigger batches,\n"
      "fewer messages, and less outstanding state on flat workloads like\n"
      "em3d). Total time is usually close — the paper's point is that the\n"
      "template is a tunable policy, not a fixed schedule.\n");
  return 0;
}
