// Cross-suite comparison: the three Olden-style kernels (treeadd, power,
// perimeter) under every engine. These are the workloads the caching
// comparator (Carlisle & Rogers' Olden) was designed around; the suite
// shows where DPA's reordering wins, where subtree locality makes engines
// tie, and what the remote-accumulation extension buys.
#include <cstdio>

#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  std::int64_t procs = 16;
  dpa::bench::FaultOptions faults;
  dpa::Options options;
  options.i64("procs", &procs, "simulated nodes");
  faults.add_flags(options);
  if (!options.parse(argc, argv)) return 0;

  using namespace dpa;
  const auto net = faults.applied(bench::t3d_params());
  faults.announce();
  const auto nodes = std::uint32_t(procs);

  struct EngineRow {
    const char* name;
    rt::RuntimeConfig cfg;
  };
  const EngineRow engines[] = {
      {"dpa", rt::RuntimeConfig::dpa(64)},
      {"dpa-base", rt::RuntimeConfig::dpa_base(64)},
      {"caching", rt::RuntimeConfig::caching()},
      {"prefetch", rt::RuntimeConfig::prefetching(8)},
      {"blocking", rt::RuntimeConfig::blocking()},
  };

  std::printf("=== Olden-style PBDS suite on %u nodes ===\n\n", nodes);
  Table table({"app", "engine", "time(ms)", "msgs", "agg", "remote refs"});

  apps::olden::TreeAddApp treeadd({.depth = 14, .seed = 3, .cost_visit = 150},
                                  nodes);
  apps::olden::PowerApp power({}, nodes);
  apps::olden::PerimeterApp perimeter(
      {.log_size = 7, .blobs = 6, .seed = 5}, nodes);

  for (const auto& e : engines) {
    {
      const auto r = treeadd.run(net, e.cfg);
      table.add_row({"treeadd", e.name,
                     Table::num(r.phase.seconds() * 1e3, 2),
                     std::to_string(r.phase.rt.request_msgs),
                     Table::num(r.phase.rt.aggregation_factor(), 1),
                     std::to_string(r.phase.rt.refs_requested)});
    }
    {
      const auto r = power.run(net, e.cfg);
      double ms = 0;
      std::uint64_t msgs = 0, refs = 0;
      double agg = 0;
      for (const auto& p : r.phases) {
        ms += p.seconds() * 1e3;
        msgs += p.rt.request_msgs + p.rt.accum_msgs;
        refs += p.rt.refs_requested;
        agg = p.rt.aggregation_factor();
      }
      table.add_row({"power", e.name, Table::num(ms, 2),
                     std::to_string(msgs), Table::num(agg, 1),
                     std::to_string(refs)});
    }
    {
      const auto r = perimeter.run(net, e.cfg);
      table.add_row({"perimeter", e.name,
                     Table::num(r.phase.seconds() * 1e3, 2),
                     std::to_string(r.phase.rt.request_msgs),
                     Table::num(r.phase.rt.aggregation_factor(), 1),
                     std::to_string(r.phase.rt.refs_requested)});
    }
  }
  table.print();
  std::printf(
      "\nexpected shape: power shows DPA's largest win (fine-grained reads\n"
      "AND updates, both batched); perimeter is reuse-dominated — the\n"
      "unbounded whole-phase cache keeps the tree top resident, so caching\n"
      "runs close to DPA while blocking (no reuse at all) is an order of\n"
      "magnitude off; treeadd's subtree ownership keeps most work local,\n"
      "with the scattered allocations separating the engines mildly.\n");
  return 0;
}
