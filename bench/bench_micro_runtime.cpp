// Microbenchmarks (google-benchmark, real host time): the per-primitive
// costs of the simulation substrate and the DPA runtime. These measure the
// *host* cost of simulating one unit — useful for knowing how big a
// simulated machine the harness can afford — not the modeled T3D costs.
#include <benchmark/benchmark.h>

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>

#include "apps/barnes/plummer.h"
#include "apps/barnes/tree.h"
#include "gas/heap.h"
#include "runtime/phase.h"
#include "support/arena.h"
#include "support/flat_map.h"
#include "support/inline_fn.h"
#include "support/rng.h"

namespace {

using namespace dpa;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) engine.schedule_at(i, [] {});
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_MortonKey(benchmark::State& state) {
  const apps::Vec3 c{0, 0, 0};
  apps::Vec3 p{0.3, -0.2, 0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::barnes::morton_key(p, c, 1.0));
    p.x += 1e-9;
  }
}
BENCHMARK(BM_MortonKey);

void BM_TreeBuild(benchmark::State& state) {
  const auto bodies =
      apps::barnes::plummer_model(std::uint32_t(state.range(0)), 42);
  for (auto _ : state) {
    auto tree = apps::barnes::BhTree::build(bodies);
    benchmark::DoNotOptimize(tree.num_cells());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(1024)->Arg(8192);

// One simulated remote fetch end to end: thread create, M insert, request,
// reply, tile dispatch, thread run.
void BM_DpaRemoteFetch(benchmark::State& state) {
  struct Obj {
    double v;
  };
  for (auto _ : state) {
    state.PauseTiming();
    rt::Cluster cluster(2, sim::NetParams{});
    std::vector<gas::GPtr<Obj>> objs;
    for (int i = 0; i < 512; ++i)
      objs.push_back(cluster.heap.make<Obj>(1, Obj{double(i)}));
    rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(64));
    std::vector<rt::NodeWork> work(2);
    work[0].count = 512;
    work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
      ctx.require(objs[std::size_t(i)], [](rt::Ctx&, const Obj&) {});
    };
    state.ResumeTiming();
    const auto result = runner.run(std::move(work));
    benchmark::DoNotOptimize(result.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DpaRemoteFetch);

// --- Container head-to-head: the M-map access pattern ---
//
// One strip of the DPA engine: insert `n` pointer keys (dup joins probe the
// same keys), look them all up (reply processing), then clear (strip
// boundary). FlatMap is the production container; the unordered_map twin
// exists to keep the win measurable on this host.

constexpr int kMapKeys = 512;

template <class Map>
void map_churn(benchmark::State& state) {
  struct Obj {
    double v;
  };
  std::vector<Obj> objs(kMapKeys);
  for (auto _ : state) {
    Map m;
    for (int i = 0; i < kMapKeys; ++i) m.try_emplace(&objs[i], 0);
    std::uint64_t sum = 0;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < kMapKeys; ++i) {
        auto it = m.find(&objs[i]);
        sum += std::uint64_t(it->second += 1);
      }
    }
    benchmark::DoNotOptimize(sum);
    m.clear();
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(state.iterations() * kMapKeys * 5);
}

void BM_MapChurn_FlatMap(benchmark::State& state) {
  map_churn<FlatMap<const void*, int>>(state);
}
BENCHMARK(BM_MapChurn_FlatMap);

void BM_MapChurn_UnorderedMap(benchmark::State& state) {
  map_churn<std::unordered_map<const void*, int>>(state);
}
BENCHMARK(BM_MapChurn_UnorderedMap);

// --- Callable head-to-head: the thread-continuation pattern ---
//
// Create a capturing closure, store it in the runtime's callable type, and
// invoke it through type erasure — the per-thread cost require() pays.

template <class Fn>
void closure_roundtrip(benchmark::State& state) {
  struct Obj {
    double v = 1.0;
  };
  Obj obj;
  double acc = 0;
  for (auto _ : state) {
    Fn fn = [&obj, &acc, scale = 2.0](const void* p) {
      acc += static_cast<const Obj*>(p)->v * scale;
    };
    fn(&obj);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Closure_InlineFn(benchmark::State& state) {
  closure_roundtrip<InlineFn<void(const void*), 48>>(state);
}
BENCHMARK(BM_Closure_InlineFn);

void BM_Closure_StdFunction(benchmark::State& state) {
  closure_roundtrip<std::function<void(const void*)>>(state);
}
BENCHMARK(BM_Closure_StdFunction);

// --- Payload allocation head-to-head: the per-message wire cost ---
//
// Every simulated message used to malloc its payload through make_shared
// and free it when the last fragment retired. The sim backend now pools
// payloads through the phase arena instead (allocate_shared on an
// ArenaAllocator; retired blocks go back to a per-size free list), so a
// steady-state phase allocates no heap memory per message. The make_shared
// twin is the before — and what the native backend still pays, where a
// cross-thread arena would need locks.

struct WirePayload {  // the size class of a pooled request/accum payload
  std::uint64_t seq = 0;
  std::array<std::byte, 88> data{};
};

constexpr int kPayloadBatch = 512;

void BM_PayloadAlloc_ArenaPool(benchmark::State& state) {
  Arena arena;
  std::vector<std::shared_ptr<WirePayload>> live(kPayloadBatch);
  for (auto _ : state) {
    // In-flight window fills and drains, as during a phase...
    for (auto& p : live)
      p = std::allocate_shared<WirePayload>(ArenaAllocator<WirePayload>(&arena));
    for (auto& p : live) p.reset();  // recycled into the free list
  }
  // (...and the arena resets wholesale at the phase boundary.)
  arena.reset();
  state.SetItemsProcessed(state.iterations() * kPayloadBatch);
}
BENCHMARK(BM_PayloadAlloc_ArenaPool);

void BM_PayloadAlloc_MakeShared(benchmark::State& state) {
  std::vector<std::shared_ptr<WirePayload>> live(kPayloadBatch);
  for (auto _ : state) {
    for (auto& p : live) p = std::make_shared<WirePayload>();
    for (auto& p : live) p.reset();
  }
  state.SetItemsProcessed(state.iterations() * kPayloadBatch);
}
BENCHMARK(BM_PayloadAlloc_MakeShared);

// Local thread creation + dispatch only.
void BM_DpaLocalThreads(benchmark::State& state) {
  struct Obj {
    double v;
  };
  for (auto _ : state) {
    state.PauseTiming();
    rt::Cluster cluster(1, sim::NetParams{});
    std::vector<gas::GPtr<Obj>> objs;
    for (int i = 0; i < 2048; ++i)
      objs.push_back(cluster.heap.make<Obj>(0, Obj{double(i)}));
    rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(256));
    std::vector<rt::NodeWork> work(1);
    work[0].count = 2048;
    work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
      ctx.require(objs[std::size_t(i)], [](rt::Ctx&, const Obj&) {});
    };
    state.ResumeTiming();
    const auto result = runner.run(std::move(work));
    benchmark::DoNotOptimize(result.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DpaLocalThreads);

}  // namespace

BENCHMARK_MAIN();
