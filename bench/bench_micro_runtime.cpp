// Microbenchmarks (google-benchmark, real host time): the per-primitive
// costs of the simulation substrate and the DPA runtime. These measure the
// *host* cost of simulating one unit — useful for knowing how big a
// simulated machine the harness can afford — not the modeled T3D costs.
#include <benchmark/benchmark.h>

#include "apps/barnes/plummer.h"
#include "apps/barnes/tree.h"
#include "gas/heap.h"
#include "runtime/phase.h"
#include "support/rng.h"

namespace {

using namespace dpa;

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) engine.schedule_at(i, [] {});
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_MortonKey(benchmark::State& state) {
  const apps::Vec3 c{0, 0, 0};
  apps::Vec3 p{0.3, -0.2, 0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(apps::barnes::morton_key(p, c, 1.0));
    p.x += 1e-9;
  }
}
BENCHMARK(BM_MortonKey);

void BM_TreeBuild(benchmark::State& state) {
  const auto bodies =
      apps::barnes::plummer_model(std::uint32_t(state.range(0)), 42);
  for (auto _ : state) {
    auto tree = apps::barnes::BhTree::build(bodies);
    benchmark::DoNotOptimize(tree.num_cells());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TreeBuild)->Arg(1024)->Arg(8192);

// One simulated remote fetch end to end: thread create, M insert, request,
// reply, tile dispatch, thread run.
void BM_DpaRemoteFetch(benchmark::State& state) {
  struct Obj {
    double v;
  };
  for (auto _ : state) {
    state.PauseTiming();
    rt::Cluster cluster(2, sim::NetParams{});
    std::vector<gas::GPtr<Obj>> objs;
    for (int i = 0; i < 512; ++i)
      objs.push_back(cluster.heap.make<Obj>(1, Obj{double(i)}));
    rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(64));
    std::vector<rt::NodeWork> work(2);
    work[0].count = 512;
    work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
      ctx.require(objs[std::size_t(i)], [](rt::Ctx&, const Obj&) {});
    };
    state.ResumeTiming();
    const auto result = runner.run(std::move(work));
    benchmark::DoNotOptimize(result.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DpaRemoteFetch);

// Local thread creation + dispatch only.
void BM_DpaLocalThreads(benchmark::State& state) {
  struct Obj {
    double v;
  };
  for (auto _ : state) {
    state.PauseTiming();
    rt::Cluster cluster(1, sim::NetParams{});
    std::vector<gas::GPtr<Obj>> objs;
    for (int i = 0; i < 2048; ++i)
      objs.push_back(cluster.heap.make<Obj>(0, Obj{double(i)}));
    rt::PhaseRunner runner(cluster, rt::RuntimeConfig::dpa(256));
    std::vector<rt::NodeWork> work(1);
    work[0].count = 2048;
    work[0].item = [&objs](rt::Ctx& ctx, std::uint64_t i) {
      ctx.require(objs[std::size_t(i)], [](rt::Ctx&, const Obj&) {});
    };
    state.ResumeTiming();
    const auto result = runner.run(std::move(work));
    benchmark::DoNotOptimize(result.elapsed);
  }
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_DpaLocalThreads);

}  // namespace

BENCHMARK_MAIN();
