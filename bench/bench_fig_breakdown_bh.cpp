// Reproduces the Barnes-Hut breakdown figure: total force-phase time split
// into local computation (app compute + runtime overhead), communication
// overhead, and idle time, with the speedup over the modeled sequential
// version atop each bar — for the three configurations the paper stacks:
//   Base          DPA threads with synchronous gets (tiling only)
//   +Pipelining   asynchronous requests overlap local work
//   +Aggregation  requests batched per destination (full DPA)
#include <cstdio>

#include "apps/barnes/app.h"
#include "common.h"
#include "support/options.h"

int main(int argc, char** argv) {
  bool paper = false;
  std::int64_t bodies = 4096;
  std::string procs_list = "4,16,64";
  dpa::bench::ObsOptions obs;
  dpa::bench::FaultOptions faults;
  dpa::Options options;
  options.flag("paper", &paper, "full 16,384-body configuration")
      .i64("bodies", &bodies, "bodies (ignored with --paper)")
      .str("procs", &procs_list, "comma-separated node counts");
  obs.add_flags(options);
  faults.add_flags(options);
  if (!options.parse(argc, argv)) return 0;
  obs.init();
  const auto net = faults.applied(dpa::bench::t3d_params());
  faults.announce();

  using namespace dpa;
  using apps::barnes::BarnesApp;
  using apps::barnes::BarnesConfig;

  BarnesConfig cfg;
  cfg.nbodies = paper ? 16384 : std::uint32_t(bodies);
  cfg.nsteps = 1;
  BarnesApp app(cfg);

  const auto seq = app.run_sequential();
  const double seq_seconds = seq[0].seconds;
  std::printf(
      "=== Figure: Barnes-Hut force-phase breakdown (%u bodies) ===\n"
      "sequential (modeled): %.3f s\n\n",
      cfg.nbodies, seq_seconds);

  std::vector<std::uint32_t> procs;
  std::size_t pos = 0;
  while (pos < procs_list.size()) {
    const auto comma = procs_list.find(',', pos);
    procs.push_back(std::uint32_t(
        std::stoul(procs_list.substr(pos, comma - pos))));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  struct Version {
    const char* name;
    rt::RuntimeConfig cfg;
  };
  const Version versions[] = {
      {"Base", rt::RuntimeConfig::dpa_base(50)},
      {"+Pipelining", rt::RuntimeConfig::dpa_pipelined(50)},
      {"+Aggregation", rt::RuntimeConfig::dpa(50)},
  };

  for (const auto p : procs) {
    std::printf("--- %u nodes ---\n", p);
    Table table({"version", "total(s)", "local(s)", "comm(s)", "idle(s)",
                 "speedup"});
    for (const auto& v : versions) {
      const auto run = app.run(p, net, v.cfg, obs.get());
      bench::print_breakdown_row(table, v.name, run.steps[0].phase,
                                 seq_seconds);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper): Base is dominated by idle (serialized\n"
      "round trips); pipelining converts idle into overlap; aggregation\n"
      "removes most per-message overhead. Speedups grow left to right.\n");
  return obs.finish() ? 0 : 1;
}
