// The compiler half of the paper, end to end: write a pointer-based
// traversal in the mini-IR, run the thread-partitioning pass (split at
// foreign dereferences, hoist accesses, label creation sites with
// pointers), print the resulting thread program, and execute it on the DPA
// runtime against a distributed object graph.
//
//   ./compiled_traversal --procs=8 --len=200
#include <cstdio>

#include "compiler/interp.h"
#include "compiler/parser.h"
#include "compiler/partition.h"
#include "support/options.h"
#include "support/rng.h"

using namespace dpa;
using namespace dpa::compiler;

namespace {

// A "next/peer" list: each node combines its own value with its peer's —
// the peer dereference is the foreign access that forces a thread split.
constexpr const char* kSource = R"(
class Node {
  scalar val;
  scalar weight;
  ptr next : Node;
  ptr peer : Node;
}

fn visit(n : Node) {
  v  = n->val;
  w  = n->weight;
  pr = n->peer;          # another pointer, possibly remote
  nx = n->next;
  charge 200;
  pv = pr->val;          # foreign dereference: the compiler splits here
  total += v * w + pv;
  spawn visit(nx);
}
)";

Module make_module() { return parse_module(kSource); }

}  // namespace

int main(int argc, char** argv) {
  std::int64_t procs = 8;
  std::int64_t len = 200;
  Options options;
  options.i64("procs", &procs, "simulated nodes")
      .i64("len", &len, "list length");
  if (!options.parse(argc, argv)) return 0;

  const Module module = make_module();
  const ThreadProgram program = partition(module);

  std::printf("=== source function 'visit' compiled to %zu thread "
              "template(s) ===\n\n%s\n",
              program.templates.size(), program.dump().c_str());

  // Build the distributed graph: a list scattered round-robin, peers random.
  rt::Cluster cluster(std::uint32_t(procs), sim::NetParams{});
  Rng rng(31);
  std::vector<gas::GPtr<Record>> nodes;
  for (std::int64_t i = 0; i < len; ++i) {
    Record r = make_record(module, "Node");
    r.scalars[0] = rng.uniform(0, 1);  // val
    r.scalars[1] = rng.uniform(0, 2);  // weight
    nodes.push_back(cluster.heap.make<Record>(
        sim::NodeId(std::uint32_t(i) % cluster.num_nodes()), std::move(r)));
  }
  for (std::int64_t i = 0; i < len; ++i) {
    auto* mut = gas::GlobalHeap::mutate(nodes[std::size_t(i)]);
    if (i + 1 < len) mut->ptrs[0] = nodes[std::size_t(i + 1)];
    mut->ptrs[1] = nodes[rng.next_below(std::uint64_t(len))];
  }

  // Oracle: direct recursive interpretation on the host.
  Accums direct;
  interp_direct(module, "visit", nodes[0].addr, direct);

  // Compiled execution on the DPA runtime.
  ProgramRunner runner(module, program);
  Accums compiled;
  std::vector<std::vector<gas::GPtr<Record>>> roots(cluster.num_nodes());
  roots[0].push_back(nodes[0]);
  const auto result = runner.run(cluster, rt::RuntimeConfig::dpa(32),
                                 "visit", std::move(roots), &compiled);
  if (!result.completed) {
    std::fprintf(stderr, "deadlock:\n%s", result.diagnostics.c_str());
    return 1;
  }

  std::printf("direct interpretation: total = %.6f\n", direct["total"]);
  std::printf("compiled on runtime:   total = %.6f\n", compiled["total"]);
  std::printf("simulated time %.3f ms, %llu threads, %llu fetches in %llu "
              "messages (agg %.1fx)\n",
              result.seconds() * 1e3,
              (unsigned long long)result.rt.threads_run,
              (unsigned long long)result.rt.refs_requested,
              (unsigned long long)result.rt.request_msgs,
              result.rt.aggregation_factor());
  return direct["total"] == compiled["total"] ? 0 : 1;
}
