// The Olden-style PBDS kernels on the DPA runtime: treeadd (tree sum with
// subtree ownership), power (price reads + demand accumulation), and
// perimeter (quadtree neighbor probing) — each validated against its
// oracle and reported with runtime statistics.
//
//   ./olden_suite --procs=16 --engine=dpa
#include <cstdio>

#include "apps/olden/perimeter.h"
#include "apps/olden/power.h"
#include "apps/olden/treeadd.h"
#include "support/options.h"

using namespace dpa;
using namespace dpa::apps;

int main(int argc, char** argv) {
  std::int64_t procs = 16;
  std::string engine = "dpa";
  Options options;
  options.i64("procs", &procs, "simulated nodes")
      .str("engine", &engine, "dpa | caching | prefetch | blocking");
  if (!options.parse(argc, argv)) return 0;

  rt::RuntimeConfig rcfg;
  if (engine == "dpa")
    rcfg = rt::RuntimeConfig::dpa(64);
  else if (engine == "caching")
    rcfg = rt::RuntimeConfig::caching();
  else if (engine == "prefetch")
    rcfg = rt::RuntimeConfig::prefetching();
  else if (engine == "blocking")
    rcfg = rt::RuntimeConfig::blocking();
  else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
    return 1;
  }
  const auto nodes = std::uint32_t(procs);
  const sim::NetParams net{};
  bool ok = true;

  {
    olden::TreeAddApp app({.depth = 14, .seed = 1, .cost_visit = 150}, nodes);
    const auto r = app.run(net, rcfg);
    const bool pass = r.phase.completed &&
                      std::abs(r.sum - r.expected) < 1e-9;
    ok = ok && pass;
    std::printf("treeadd    sum %.4f (oracle %.4f)  %s  %.3f ms, %llu "
                "threads, %.0f%% local\n",
                r.sum, r.expected, pass ? "OK" : "MISMATCH",
                r.phase.seconds() * 1e3,
                (unsigned long long)r.phase.rt.threads_run,
                100.0 * double(r.phase.rt.local_threads) /
                    double(r.phase.rt.threads_run));
  }
  {
    olden::PowerApp app({}, nodes);
    const auto r = app.run(net, rcfg);
    const auto seq = app.run_sequential();
    const bool pass = r.all_completed() &&
                      std::abs(r.final_root_demand - seq.final_root_demand) <
                          1e-9;
    ok = ok && pass;
    double ms = 0;
    std::uint64_t accums = 0;
    for (const auto& p : r.phases) {
      ms += p.seconds() * 1e3;
      accums += p.rt.accums_issued + p.rt.accums_local;
    }
    std::printf("power      root demand %.4f (oracle %.4f)  %s  %.3f ms, "
                "%llu demand updates\n",
                r.final_root_demand, seq.final_root_demand,
                pass ? "OK" : "MISMATCH", ms, (unsigned long long)accums);
  }
  {
    olden::PerimeterApp app({.log_size = 7, .blobs = 6, .seed = 2}, nodes);
    const auto r = app.run(net, rcfg);
    const bool pass = r.phase.completed && r.perimeter == r.expected;
    ok = ok && pass;
    std::printf("perimeter  %llu edges (oracle %llu)  %s  %.3f ms, %llu "
                "black leaves, %llu tree nodes\n",
                (unsigned long long)r.perimeter,
                (unsigned long long)r.expected, pass ? "OK" : "MISMATCH",
                r.phase.seconds() * 1e3,
                (unsigned long long)r.black_leaves,
                (unsigned long long)r.tree_nodes);
  }
  return ok ? 0 : 1;
}
