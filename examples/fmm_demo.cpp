// Adaptive 2D FMM on the DPA runtime — the paper's second evaluation
// workload. Builds the quadtree and interaction lists, runs the interaction
// phase (M2L + P2P) in parallel, and verifies the resulting forces against
// a direct O(N^2) sum.
//
//   ./fmm_demo --particles=8192 --terms=20 --procs=16
#include <cmath>
#include <cstdio>

#include "apps/fmm/app.h"
#include "support/options.h"

using namespace dpa;
using namespace dpa::apps;

int main(int argc, char** argv) {
  std::int64_t particles = 8192;
  std::int64_t terms = 20;
  std::int64_t procs = 16;
  std::int64_t strip = 300;
  bool verify = true;
  Options options;
  options.i64("particles", &particles, "number of particles (clustered)")
      .i64("terms", &terms, "expansion order p (paper: 29)")
      .i64("procs", &procs, "simulated nodes")
      .i64("strip", &strip, "DPA strip size (paper: 300 for FMM)")
      .flag("verify", &verify, "check forces against a direct O(N^2) sum");
  if (!options.parse(argc, argv)) return 0;

  fmm::FmmConfig cfg;
  cfg.nparticles = std::uint32_t(particles);
  cfg.terms = std::uint32_t(terms);
  fmm::FmmApp app(cfg);

  std::printf("FMM: %lld particles, %lld terms, %lld nodes, strip %lld\n\n",
              (long long)particles, (long long)terms, (long long)procs,
              (long long)strip);
  const auto run = app.run(std::uint32_t(procs), sim::NetParams{},
                           rt::RuntimeConfig::dpa(std::uint32_t(strip)));

  const auto& st = run.steps[0];
  std::printf("interaction phase:   %.3f s simulated\n", st.phase.seconds());
  std::printf("M2L translations:    %llu\n", (unsigned long long)st.m2l);
  std::printf("P2P pairs:           %llu\n",
              (unsigned long long)st.p2p_pairs);
  std::printf("remote fetches:      %llu in %llu messages (agg %.1fx)\n",
              (unsigned long long)st.phase.rt.refs_requested,
              (unsigned long long)st.phase.rt.request_msgs,
              st.phase.rt.aggregation_factor());
  std::printf("modeled sequential:  %.3f s  (speedup %.1fx)\n",
              st.model_seq_seconds,
              st.model_seq_seconds / st.phase.seconds());

  if (verify) {
    const auto direct = fmm::direct_forces(app.initial_particles());
    double worst = 0;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      const double scale = std::max(1e-12, std::abs(direct[i]));
      worst = std::max(
          worst, std::abs(run.final_particles[i].force - direct[i]) / scale);
    }
    std::printf("max relative force error vs direct sum: %.2e\n", worst);
  }
  return 0;
}
