// Barnes-Hut N-body simulation on the DPA runtime — the paper's first
// evaluation workload. Generates a Plummer sphere, then runs several steps
// of octree build (host-side setup) + force computation (the timed, DPA-
// optimized phase) + leapfrog integration, printing a per-step report and
// energy diagnostics.
//
//   ./barnes_hut --bodies=8192 --steps=4 --procs=32 --engine=dpa
#include <cmath>
#include <cstdio>

#include "apps/barnes/app.h"
#include "support/options.h"

using namespace dpa;
using namespace dpa::apps;

namespace {

// Total kinetic + potential energy (direct O(N^2); for small N reports).
double total_energy(const std::vector<barnes::Body>& bodies, double eps) {
  double kinetic = 0, potential = 0;
  for (const auto& b : bodies) kinetic += 0.5 * b.mass * b.vel.norm2();
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const double r =
          std::sqrt((bodies[i].pos - bodies[j].pos).norm2() + eps * eps);
      potential -= bodies[i].mass * bodies[j].mass / r;
    }
  }
  return kinetic + potential;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t nbodies = 8192;
  std::int64_t steps = 4;
  std::int64_t procs = 32;
  std::int64_t strip = 50;
  double theta = 1.0;
  std::string engine = "dpa";
  bool energy = false;
  bool quad = false;
  Options options;
  options.i64("bodies", &nbodies, "number of bodies (Plummer model)")
      .i64("steps", &steps, "time steps")
      .i64("procs", &procs, "simulated nodes")
      .i64("strip", &strip, "DPA strip size")
      .f64("theta", &theta, "opening parameter")
      .str("engine", &engine,
           "dpa | dpa-base | dpa-pipe | caching | prefetch | blocking")
      .flag("energy", &energy, "print O(N^2) energy drift check")
      .flag("quad", &quad, "use quadrupole moments in cell interactions");
  if (!options.parse(argc, argv)) return 0;

  barnes::BarnesConfig cfg;
  cfg.nbodies = std::uint32_t(nbodies);
  cfg.nsteps = std::uint32_t(steps);
  cfg.theta = theta;
  cfg.use_quadrupole = quad;
  barnes::BarnesApp app(cfg);

  rt::RuntimeConfig rcfg;
  if (engine == "dpa")
    rcfg = rt::RuntimeConfig::dpa(std::uint32_t(strip));
  else if (engine == "dpa-base")
    rcfg = rt::RuntimeConfig::dpa_base(std::uint32_t(strip));
  else if (engine == "dpa-pipe")
    rcfg = rt::RuntimeConfig::dpa_pipelined(std::uint32_t(strip));
  else if (engine == "caching")
    rcfg = rt::RuntimeConfig::caching();
  else if (engine == "prefetch")
    rcfg = rt::RuntimeConfig::prefetching();
  else if (engine == "blocking")
    rcfg = rt::RuntimeConfig::blocking();
  else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine.c_str());
    return 1;
  }

  const double e0 =
      energy ? total_energy(app.initial_bodies(), cfg.eps) : 0.0;

  std::printf("Barnes-Hut: %lld bodies, theta=%.2f, %lld steps on %lld nodes, %s\n\n",
              (long long)nbodies, theta, (long long)steps, (long long)procs,
              rcfg.describe().c_str());
  const auto run = app.run(std::uint32_t(procs), sim::NetParams{}, rcfg);

  std::printf("%4s %12s %14s %12s %10s\n", "step", "force time",
              "interactions", "msgs", "agg");
  for (std::size_t s = 0; s < run.steps.size(); ++s) {
    const auto& st = run.steps[s];
    std::printf("%4zu %10.3f s %14llu %12llu %9.1fx\n", s,
                st.phase.seconds(), (unsigned long long)st.interactions,
                (unsigned long long)st.phase.rt.request_msgs,
                st.phase.rt.aggregation_factor());
  }
  std::printf("\ntotal force-phase time: %.3f s (modeled sequential %.3f s, "
              "speedup %.1fx)\n",
              run.total_parallel_seconds(), run.total_model_seq_seconds(),
              run.total_model_seq_seconds() / run.total_parallel_seconds());

  if (energy) {
    const double e1 = total_energy(run.final_bodies, cfg.eps);
    std::printf("energy drift over %lld steps: %.4f%%\n", (long long)steps,
                100.0 * std::abs(e1 - e0) / std::abs(e0));
  }
  return 0;
}
