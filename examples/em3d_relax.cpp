// em3d graph relaxation (Olden) on the DPA runtime: the fine-grained
// irregular workload where message aggregation matters most — every remote
// dependency is an 8-byte read. Compares all engines on the same graph.
//
//   ./em3d_relax --procs=16 --per-node=1024 --remote=0.3 --iters=2
#include <cstdio>

#include "apps/em3d/em3d.h"
#include "support/options.h"

using namespace dpa;
using namespace dpa::apps;

int main(int argc, char** argv) {
  std::int64_t procs = 16;
  std::int64_t per_node = 1024;
  std::int64_t degree = 8;
  std::int64_t iters = 2;
  double remote = 0.3;
  Options options;
  options.i64("procs", &procs, "simulated nodes")
      .i64("per-node", &per_node, "E and H graph nodes per processor")
      .i64("degree", &degree, "dependencies per graph node")
      .i64("iters", &iters, "relaxation iterations")
      .f64("remote", &remote, "probability an edge crosses processors");
  if (!options.parse(argc, argv)) return 0;

  em3d::Em3dConfig cfg;
  cfg.e_per_node = std::uint32_t(per_node);
  cfg.h_per_node = std::uint32_t(per_node);
  cfg.degree = std::uint32_t(degree);
  cfg.remote_prob = remote;
  cfg.iters = std::uint32_t(iters);
  em3d::Em3dApp app(cfg, std::uint32_t(procs));

  std::printf("em3d: %lld nodes/side/proc x %lld procs, degree %lld, "
              "%.0f%% remote edges, %lld iters\n",
              (long long)per_node, (long long)procs, (long long)degree,
              100 * remote, (long long)iters);
  std::printf("remote edge fraction actually wired: %.1f%%\n\n",
              100 * app.remote_edge_fraction());

  const auto seq = app.run_sequential();

  struct Row {
    const char* name;
    rt::RuntimeConfig cfg;
  };
  const Row rows[] = {
      {"dpa", rt::RuntimeConfig::dpa(256)},
      {"dpa-base", rt::RuntimeConfig::dpa_base(256)},
      {"dpa-pipe", rt::RuntimeConfig::dpa_pipelined(256)},
      {"caching", rt::RuntimeConfig::caching()},
      {"prefetch", rt::RuntimeConfig::prefetching(8)},
      {"blocking", rt::RuntimeConfig::blocking()},
  };
  std::printf("%-10s %10s %10s %12s %8s\n", "engine", "time(s)", "speedup",
              "msgs", "agg");
  for (const Row& row : rows) {
    const auto run = app.run(sim::NetParams{}, row.cfg);
    if (!run.all_completed()) {
      std::fprintf(stderr, "%s deadlocked\n", row.name);
      return 1;
    }
    // Validate against the host reference while we're here.
    for (std::size_t i = 0; i < seq.e_values.size(); i += 101) {
      if (std::abs(run.e_values[i] - seq.e_values[i]) > 1e-9) {
        std::fprintf(stderr, "%s: wrong value at %zu\n", row.name, i);
        return 1;
      }
    }
    std::uint64_t msgs = 0;
    double agg = 0;
    for (const auto& s : run.steps) {
      msgs += s.phase.rt.request_msgs;
      agg = s.phase.rt.aggregation_factor();
    }
    std::printf("%-10s %10.4f %9.1fx %12llu %7.1fx\n", row.name,
                run.total_parallel_seconds(),
                seq.model_seconds / run.total_parallel_seconds(),
                (unsigned long long)msgs, agg);
  }
  return 0;
}
