// Quickstart: the DPA runtime API in one file.
//
// We build a binary tree whose nodes are scattered over a simulated 8-node
// machine, then sum it in parallel. Each tree node visit is a non-blocking
// thread labeled with the node's global pointer (`ctx.require`); the DPA
// runtime fetches remote nodes in aggregated batches, overlaps transfers
// with local work, and runs threads that share an object back to back.
//
//   ./quickstart            # DPA
//   ./quickstart --caching  # the software-caching baseline, for contrast
#include <cstdio>
#include <memory>
#include <vector>

#include "gas/heap.h"
#include "runtime/phase.h"
#include "sim/trace.h"
#include "support/options.h"
#include "support/rng.h"

using namespace dpa;

// A globally addressable tree node.
struct TreeNode {
  double value = 0;
  gas::GPtr<TreeNode> left;
  gas::GPtr<TreeNode> right;
};

// Builds a random tree with nodes homed on random simulated nodes.
gas::GPtr<TreeNode> build_tree(rt::Cluster& cluster, Rng& rng, int depth,
                               double* expected_sum) {
  TreeNode node;
  node.value = rng.uniform(0, 1);
  *expected_sum += node.value;
  auto self = cluster.heap.make<TreeNode>(
      sim::NodeId(rng.next_below(cluster.num_nodes())), node);
  if (depth > 0) {
    auto* mut = gas::GlobalHeap::mutate(self);
    mut->left = build_tree(cluster, rng, depth - 1, expected_sum);
    if (rng.chance(0.9))
      mut->right = build_tree(cluster, rng, depth - 1, expected_sum);
  }
  return self;
}

// The traversal, written as the paper's compiler would emit it: a
// non-blocking thread per node, labeled with the node's pointer.
void sum_tree(rt::Ctx& ctx, gas::GPtr<TreeNode> node, double* sum) {
  ctx.require(node, [sum](rt::Ctx& ctx2, const TreeNode& n) {
    ctx2.charge(150);  // model ~150ns of work per visit
    *sum += n.value;
    if (n.left) sum_tree(ctx2, n.left, sum);
    if (n.right) sum_tree(ctx2, n.right, sum);
  });
}

int main(int argc, char** argv) {
  bool caching = false;
  bool trace = false;
  std::int64_t depth = 12;
  Options options;
  options.flag("caching", &caching, "use the software-caching baseline")
      .flag("trace", &trace, "print the first lines of the execution trace")
      .i64("depth", &depth, "tree depth");
  if (!options.parse(argc, argv)) return 0;

  // An 8-node machine with Cray-T3D-like network parameters.
  rt::Cluster cluster(8, sim::NetParams{});
  Rng rng(2024);
  double expected = 0;
  const auto root = build_tree(cluster, rng, int(depth), &expected);
  std::printf("tree with %llu nodes across %u simulated nodes\n",
              (unsigned long long)cluster.heap.total_objects(),
              cluster.num_nodes());

  sim::Timeline timeline;
  if (trace) cluster.machine().set_trace(&timeline);

  const auto cfg =
      caching ? rt::RuntimeConfig::caching() : rt::RuntimeConfig::dpa(64);
  rt::PhaseRunner runner(cluster, cfg);

  // Node 0's conc loop has a single iteration: walk the whole tree.
  auto sum = std::make_shared<double>(0.0);
  std::vector<rt::NodeWork> work(cluster.num_nodes());
  work[0].count = 1;
  work[0].item = [&root, sum](rt::Ctx& ctx, std::uint64_t) {
    sum_tree(ctx, root, sum.get());
  };

  const rt::PhaseResult result = runner.run(std::move(work));
  if (!result.completed) {
    std::fprintf(stderr, "phase deadlocked:\n%s", result.diagnostics.c_str());
    return 1;
  }

  std::printf("engine            %s\n", cfg.describe().c_str());
  std::printf("sum               %.6f (expected %.6f)\n", *sum, expected);
  std::printf("simulated time    %.3f ms\n", result.seconds() * 1e3);
  std::printf("threads run       %llu\n",
              (unsigned long long)result.rt.threads_run);
  std::printf("remote fetches    %llu in %llu messages (aggregation %.1fx)\n",
              (unsigned long long)result.rt.refs_requested,
              (unsigned long long)result.rt.request_msgs,
              result.rt.aggregation_factor());
  std::printf("cache hit rate    %.1f%%\n",
              100.0 * result.rt.cache_hit_rate());
  if (trace) {
    std::printf("\n--- execution trace (first 30 events) ---\n%s",
                timeline.dump(30).c_str());
  }
  return 0;
}
